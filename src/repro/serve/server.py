"""The asyncio sizing server: HTTP/1.1 on stdlib streams, no framework.

One :class:`SizingServer` owns a :class:`~repro.serve.tenants.
TenantRegistry` and serves the four-endpoint protocol documented in
:mod:`repro.serve`.  The HTTP layer is deliberately minimal — request
line, headers, ``Content-Length`` body, JSON in/out, keep-alive — which
keeps the dependency surface at zero while still talking to ``curl``
and any HTTP client.

Model work (training steps, pool queries) runs on the default executor
so a slow update never stalls the event loop; that is exactly the
concurrency the pool-level lock in :class:`~repro.core.pool.ModelPool`
exists for.  :class:`ServerThread` wraps the server in a background
thread with its own event loop — the harness used by the tests, the
benchmark, and the load generator's self-hosted mode.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from collections import Counter
from urllib.parse import parse_qs

from repro.core.config import SizeyConfig
from repro.obs.log import get_logger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.serve.protocol import (
    ProtocolError,
    parse_observe_request,
    parse_predict_request,
)
from repro.serve.tenants import TenantRegistry

__all__ = ["SizingServer", "ServerThread", "DEFAULT_PORT"]

_log = get_logger("serve.server")

DEFAULT_PORT = 8713
#: Requests beyond this body size are rejected with 413.
MAX_BODY_BYTES = 8 << 20
#: Idle keep-alive connections are dropped after this many seconds.
IDLE_TIMEOUT_S = 60.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class SizingServer:
    """Resident prediction service over a tenant registry."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        registry: TenantRegistry | None = None,
        config: SizeyConfig | None = None,
        base_seed: int = 0,
        max_tenants: int = 64,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else TenantRegistry(
            config, base_seed=base_seed, max_tenants=max_tenants
        )
        self.requests: Counter[str] = Counter()
        self.errors = 0
        self.started_at: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; ``port=0`` picks a free port."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        _log.info(
            "sizing server started",
            extra={"host": self.host, "port": self.port},
        )

    async def stop(self) -> None:
        """Stop accepting, drain open connections, release serve_forever().

        Idle keep-alive connections are closed so their handlers exit on
        EOF instead of being cancelled mid-read when the loop shuts down
        — a clean shutdown, not a cancellation storm.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._stopped is not None:
            self._stopped.set()
        _log.info(
            "sizing server stopped",
            extra={
                "n_requests": sum(self.requests.values()),
                "n_errors": self.errors,
            },
        )

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (or cancellation)."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=IDLE_TIMEOUT_S
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if request is None:
                    break
                method, path, headers, body, status = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                if status is not None:  # transport-level reject (413, ...)
                    self.errors += 1
                    await self._write_response(
                        writer,
                        status,
                        {"error": {"field": "body", "message": _REASONS[status]}},
                        keep_alive=False,
                    )
                    break
                status, payload = await self._dispatch(method, path, body)
                if status >= 400:
                    self.errors += 1
                await self._write_response(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            with contextlib.suppress(BaseException):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError):
            return "GET", "/", {}, b"", 400
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return method, path, headers, b"", 400
        if length > MAX_BODY_BYTES:
            return method, path, headers, b"", 413
        body = await reader.readexactly(length) if length else b""
        # Query strings survive to _dispatch (e.g. /metrics?format=...).
        return method, path, headers, body, None

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict | str",
        *,
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, str):
            # Pre-rendered text body (the Prometheus exposition format).
            body = payload.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> "tuple[int, dict | str]":
        path, _, query = path.partition("?")
        route = (method.upper(), path)
        if path not in ("/predict", "/observe", "/metrics", "/healthz"):
            return 404, {
                "error": {"field": "path", "message": f"unknown path {path!r}"}
            }
        expected = "POST" if path in ("/predict", "/observe") else "GET"
        if route[0] != expected:
            return 405, {
                "error": {
                    "field": "method",
                    "message": f"{path} requires {expected}",
                }
            }
        self.requests[path.lstrip("/")] += 1
        if path == "/healthz":
            return 200, self._healthz_payload()
        if path == "/metrics":
            formats = parse_qs(query).get("format", ["json"])
            fmt = formats[-1]
            if fmt == "prometheus":
                return 200, render_prometheus(self._metrics_payload())
            if fmt != "json":
                return 400, {
                    "error": {
                        "field": "format",
                        "message": (
                            f"unknown metrics format {fmt!r} "
                            f"(expected 'json' or 'prometheus')"
                        ),
                    }
                }
            return 200, self._metrics_payload()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return 400, ProtocolError(
                "body", "request body is not valid JSON"
            ).to_payload()
        loop = asyncio.get_running_loop()
        try:
            if path == "/predict":
                tenant, tasks = parse_predict_request(payload)
                session = self.registry.get(tenant)
                results = await loop.run_in_executor(
                    None, session.predict, tasks
                )
                return 200, {"tenant": tenant, "results": results}
            tenant, observations = parse_observe_request(payload)
            session = self.registry.get(tenant)
            n = await loop.run_in_executor(
                None, session.observe, observations
            )
            return 200, {"tenant": tenant, "n_observed": n}
        except ProtocolError as exc:
            return 400, exc.to_payload()
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            return 500, {
                "error": {"field": "server", "message": repr(exc)}
            }

    def _healthz_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "n_tenants": len(self.registry),
        }

    def _metrics_payload(self) -> dict:
        return {
            "server": {
                "uptime_s": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
                "requests": dict(self.requests),
                "errors": self.errors,
            },
            "registry": self.registry.metrics(),
        }


class ServerThread:
    """A :class:`SizingServer` on a background thread, as a context manager.

    ::

        with ServerThread(base_seed=0) as srv:
            client = SizingClient(srv.host, srv.port)

    Binds ``port=0`` by default so parallel test workers never collide.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **kwargs) -> None:
        self.server = SizingServer(host, port, **kwargs)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="sizing-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("sizing server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                "sizing server failed to start"
            ) from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=10)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # pragma: no cover - startup race
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            await self.server.serve_forever()

        asyncio.run(main())
