"""Blocking client for the sizing service (stdlib ``http.client``).

The client keeps one persistent connection and transparently reopens it
once if the server closed an idle keep-alive — so long-lived callers
(the CLI, the examples) don't need their own retry logic.  Error
responses surface as :class:`ServeError` carrying the HTTP status and
the typed field path from the server's 400 payload.
"""

from __future__ import annotations

import http.client
import json

from repro.serve.server import DEFAULT_PORT

__all__ = ["ServeError", "SizingClient"]


class ServeError(RuntimeError):
    """A non-2xx response from the sizing server."""

    def __init__(self, status: int, field: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{field}]: {message}")
        self.status = status
        self.field = field
        self.message = message


class SizingClient:
    """Thin blocking wrapper over the four endpoints."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self, format: str = "json") -> "dict | str":
        """``GET /metrics``: a dict, or the Prometheus text exposition.

        ``format="prometheus"`` returns the raw ``text/plain`` body ready
        for scraping/golden-file comparison; anything else round-trips
        the JSON payload.
        """
        if format == "json":
            return self._request("GET", "/metrics")
        return self._request(
            "GET", f"/metrics?format={format}", raw_text=True
        )

    def predict(self, tenant: str, tasks: list[dict]) -> dict:
        """``POST /predict``: tasks are plain dicts (see protocol docs)."""
        return self._request(
            "POST", "/predict", {"tenant": tenant, "tasks": tasks}
        )

    def observe(self, tenant: str, observations: list[dict]) -> dict:
        """``POST /observe``: feed measured peaks back to the tenant."""
        return self._request(
            "POST",
            "/observe",
            {"tenant": tenant, "observations": observations},
        )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SizingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        raw_text: bool = False,
    ) -> "dict | str":
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Exception | None = None
        for attempt in range(2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError) as exc:
                # Stale keep-alive (server dropped the idle socket):
                # reconnect once; a second failure is a real outage.
                self.close()
                last_error = exc
        else:
            assert last_error is not None
            raise ServeError(0, "connection", str(last_error))
        if raw_text and response.status < 400:
            return data.decode("utf-8")
        try:
            parsed = json.loads(data.decode("utf-8"))
        except ValueError:
            raise ServeError(
                response.status, "body", "server returned non-JSON body"
            ) from None
        if response.status >= 400:
            error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
            raise ServeError(
                response.status,
                error.get("field", "unknown"),
                error.get("message", "request failed"),
            )
        return parsed
