"""Unit tests for the unified simulation kernel.

Covers the kernel's own contracts — event ordering, requeue-after-kill,
collector composition — plus the cross-mode determinism pin: identical
seeds must give identical results when the flat event backend and the
DAG engine execute the same effective workload.
"""

import pytest

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.sim.backends.event import EventDrivenBackend, FlatStreamDriver
from repro.sim.arrivals import FixedArrivals
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.kernel import (
    ARRIVAL,
    COMPLETION,
    OUTAGE_END,
    OUTAGE_START,
    BaseCollector,
    ClusterMetricsCollector,
    EventHeap,
    SimulationKernel,
)
from repro.sim.results import result_to_dict
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(spec, workflow="wf", dag=None, preset=4096.0):
    """``spec``: list of (type_name, peak_mb, runtime_hours) tuples."""
    types = {}
    insts = []
    for i, (name, peak, runtime) in enumerate(spec):
        tt = types.setdefault(
            name,
            TaskType(name=name, workflow=workflow, preset_memory_mb=preset),
        )
        insts.append(
            TaskInstance(
                task_type=tt,
                instance_id=i,
                input_size_mb=100.0,
                peak_memory_mb=peak,
                runtime_hours=runtime,
            )
        )
    return WorkflowTrace(workflow, insts, dag=dag)


class FixedPredictor(MemoryPredictor):
    """Always proposes the same allocation — retries rely on the
    kernel's doubling-factor escalation floor."""

    name = "Fixed"

    def __init__(self, allocation_mb: float):
        self.allocation_mb = allocation_mb

    def predict(self, task: TaskSubmission) -> float:
        return self.allocation_mb

    def on_failure(self, task, failed_allocation_mb, attempt):
        return self.allocation_mb


class TestEventHeap:
    def test_time_orders_first(self):
        heap = EventHeap()
        heap.push(2.0, COMPLETION, "late")
        heap.push(1.0, ARRIVAL, "early")
        assert heap.pop() == (1.0, ARRIVAL, "early")
        assert heap.pop() == (2.0, COMPLETION, "late")

    def test_kind_breaks_time_ties(self):
        """At one instant: completions, node returns, arrivals, drains."""
        heap = EventHeap()
        heap.push(1.0, OUTAGE_START, "drain")
        heap.push(1.0, ARRIVAL, "arrive")
        heap.push(1.0, OUTAGE_END, "return")
        heap.push(1.0, COMPLETION, "complete")
        kinds = [heap.pop()[1] for _ in range(4)]
        assert kinds == [COMPLETION, OUTAGE_END, ARRIVAL, OUTAGE_START]

    def test_push_sequence_breaks_kind_ties(self):
        heap = EventHeap()
        for i in range(10):
            heap.push(1.0, ARRIVAL, i)
        assert [heap.pop()[2] for _ in range(10)] == list(range(10))
        assert not heap

    def test_payloads_never_compared(self):
        class Opaque:  # no ordering defined
            pass

        heap = EventHeap()
        for _ in range(5):
            heap.push(0.0, COMPLETION, Opaque())
        while heap:
            heap.pop()


class TestRequeueAfterKill:
    def test_killed_task_requeues_at_original_priority(self):
        # Task 0 is under-allocated and killed; it must re-enter the
        # queue ahead of task 1 (original priority), so on a one-slot
        # cluster its retry runs before task 1's first attempt.
        trace = make_trace([("a", 220.0, 1.0), ("a", 100.0, 1.0)])
        manager = ResourceManager(
            MachineConfig(name="tiny", memory_mb=256.0), n_nodes=1
        )
        backend = EventDrivenBackend()
        res = backend.run(trace, FixedPredictor(200.0), manager, 1.0)
        attempts = [
            (o.instance_id, o.attempt, o.success)
            for o in res.ledger.outcomes
        ]
        assert attempts == [(0, 1, False), (0, 2, True), (1, 1, True)]
        # task 0 re-dispatches in the same scheduling pass as its kill
        # (zero re-queue wait); task 1 waited the full 2 h behind it.
        assert res.cluster.total_queue_wait_hours == pytest.approx(2.0)
        assert len(res.cluster.node_timelines[0]) == 1 + 2 * 3

    def test_retry_allocation_escalates_through_doubling_floor(self):
        trace = make_trace([("a", 900.0, 1.0)])
        manager = ResourceManager(
            MachineConfig(name="tiny", memory_mb=2048.0), n_nodes=1
        )
        backend = EventDrivenBackend(doubling_factor=3.0)
        res = backend.run(trace, FixedPredictor(100.0), manager, 1.0)
        allocs = [o.allocated_mb for o in res.ledger.outcomes]
        # FixedPredictor never grows its proposal, so the kernel's
        # escalation floor drives the retries: 100 -> 300 -> 900.
        assert allocs == [100.0, 300.0, 900.0]


class _CountingCollector(BaseCollector):
    """Custom collector: counts callbacks, attaches them to the result."""

    def __init__(self):
        self.events = 0
        self.dispatches = 0
        self.successes = 0
        self.failures = 0
        self.releases = 0

    def on_event(self, now):
        self.events += 1

    def on_dispatch(self, state, now, node, wait_hours):
        self.dispatches += 1

    def on_release(self, state, now, node, allocated_mb, occupied_hours):
        self.releases += 1

    def on_task_success(self, state, now, allocated_mb):
        self.successes += 1

    def on_task_failure(self, state, now, allocated_mb, occupied_hours):
        self.failures += 1

    def contribute(self, result):
        result.collector_counts = {  # ad-hoc attribute: composition works
            "events": self.events,
            "dispatches": self.dispatches,
            "successes": self.successes,
            "failures": self.failures,
            "releases": self.releases,
        }


class TestCollectorComposition:
    def test_custom_collector_composes_with_stock_ones(self):
        trace = make_trace(
            [("a", 300.0, 1.0), ("a", 100.0, 1.0), ("a", 100.0, 0.5)]
        )
        manager = ResourceManager(
            MachineConfig(name="tiny", memory_mb=512.0), n_nodes=1
        )
        counting = _CountingCollector()
        kernel = SimulationKernel(
            trace,
            FixedPredictor(200.0),
            manager,
            1.0,
            driver=FlatStreamDriver(FixedArrivals(0.0), seed=0),
            collectors=[ClusterMetricsCollector(), counting],
        )
        res = kernel.run()
        counts = res.collector_counts
        assert counts["successes"] == 3
        assert counts["failures"] == 1  # task 0's first attempt
        assert counts["dispatches"] == counts["releases"] == 4
        # every arrival + every completion was seen
        assert counts["events"] == 3 + 4
        # the stock collectors were not displaced
        assert res.cluster is not None
        assert res.num_tasks == 3
        assert res.num_failures == 1

    def test_wastage_collector_always_installed(self):
        trace = make_trace([("a", 100.0, 1.0)])
        manager = ResourceManager(
            MachineConfig(name="tiny", memory_mb=512.0), n_nodes=1
        )
        kernel = SimulationKernel(
            trace,
            FixedPredictor(200.0),
            manager,
            1.0,
            driver=FlatStreamDriver(FixedArrivals(0.0), seed=0),
        )
        res = kernel.run()
        assert res.total_wastage_gbh > 0
        assert len(res.predictions) == 1
        assert res.cluster is None  # no cluster collector requested


class TestCrossModeDeterminism:
    """Identical seeds give identical results across flat and DAG modes.

    A single-type workload makes the DAG constraint vacuous (one node,
    no edges), so flat FCFS order and dependency-release order coincide
    even under contention and kills — the two drivers must then produce
    bit-for-bit identical results through the shared kernel.
    """

    def _trace(self):
        dag = WorkflowDAG(["a"])
        return make_trace(
            [("a", 300.0, 1.0), ("a", 500.0, 0.7), ("a", 120.0, 0.3),
             ("a", 450.0, 0.5), ("a", 80.0, 0.2)],
            dag=dag,
        )

    def _manager(self):
        return ResourceManager(
            MachineConfig(name="tiny", memory_mb=640.0), n_nodes=1
        )

    @pytest.mark.parametrize("seed", [0, 7])
    def test_flat_and_dag_identical_under_contention_and_kills(self, seed):
        trace = self._trace()
        flat = EventDrivenBackend(seed=seed).run(
            trace, FixedPredictor(256.0), self._manager(), 0.8
        )
        dag = EventDrivenBackend(dag="trace", seed=seed).run(
            trace, FixedPredictor(256.0), self._manager(), 0.8
        )
        flat_d, dag_d = result_to_dict(flat), result_to_dict(dag)
        # Workflow metrics exist only in DAG mode; everything else —
        # attempts, predictions, cluster metrics — must match exactly.
        dag_d.pop("workflows")
        flat_d.pop("workflows")
        assert flat_d == dag_d
        assert flat.num_failures > 0  # the scenario exercises kills
        assert flat.cluster.total_queue_wait_hours > 0  # and contention

    def test_repeat_runs_are_bit_identical(self):
        trace = self._trace()
        runs = [
            result_to_dict(
                EventDrivenBackend(arrival="poisson:2", seed=3).run(
                    trace, FixedPredictor(256.0), self._manager(), 0.8
                )
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestArrivalsShimRemoved:
    def test_sched_arrivals_shim_is_gone(self):
        # The PR 4 deprecation shim has been dropped; the single source
        # of truth is repro.sim.arrivals (re-exported by repro.sched).
        import importlib

        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.sched.arrivals")
        from repro.sched import WorkflowArrivals, parse_workflow_arrival
        from repro.sim.arrivals import (
            WorkflowArrivals as canonical,
            parse_workflow_arrival as canonical_parse,
        )

        assert WorkflowArrivals is canonical
        assert parse_workflow_arrival is canonical_parse
