"""Tests for the pluggable simulation backends."""

import pytest

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.sim import (
    EventDrivenBackend,
    OnlineSimulator,
    ReplayBackend,
    UnschedulableTaskError,
    backend_names,
    resolve_backend,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(peaks, runtimes=None, workflow="wf", preset=4096.0):
    tt = TaskType(name="t", workflow=workflow, preset_memory_mb=preset)
    runtimes = runtimes or [1.0] * len(peaks)
    insts = [
        TaskInstance(
            task_type=tt,
            instance_id=i,
            input_size_mb=100.0,
            peak_memory_mb=p,
            runtime_hours=r,
        )
        for i, (p, r) in enumerate(zip(peaks, runtimes))
    ]
    return WorkflowTrace(workflow, insts)


class FixedPredictor(MemoryPredictor):
    name = "Fixed"

    def __init__(self, allocation_mb: float):
        self.allocation_mb = allocation_mb
        self.seen = []
        self.contexts = []
        self.trace_ended = 0

    def predict(self, task: TaskSubmission) -> float:
        return self.allocation_mb

    def observe(self, record) -> None:
        self.seen.append(record)

    def begin_trace(self, context=None) -> None:
        self.contexts.append(context)

    def end_trace(self) -> None:
        self.trace_ended += 1


class TestBackendResolution:
    def test_registered_names(self):
        assert "replay" in backend_names()
        assert "event" in backend_names()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            OnlineSimulator(make_trace([100.0]), backend="nope")

    def test_instance_accepted(self):
        sim = OnlineSimulator(
            make_trace([100.0]), backend=EventDrivenBackend()
        )
        assert sim.backend.name == "event"

    def test_resolve_rejects_non_backend(self):
        with pytest.raises(TypeError, match="SimulatorBackend"):
            resolve_backend(42)


class TestReplayBackendFidelity:
    def test_default_backend_is_replay(self):
        assert OnlineSimulator(make_trace([100.0])).backend.name == "replay"

    def test_explicit_replay_matches_default(self):
        trace = make_trace([1000.0, 3000.0, 1500.0])
        a = OnlineSimulator(trace).run(FixedPredictor(2048.0))
        b = OnlineSimulator(trace, backend="replay").run(FixedPredictor(2048.0))
        assert a.total_wastage_gbh == b.total_wastage_gbh
        assert a.num_failures == b.num_failures
        assert [p.final_allocation_mb for p in a.predictions] == [
            p.final_allocation_mb for p in b.predictions
        ]

    def test_replay_has_no_cluster_metrics(self):
        res = OnlineSimulator(make_trace([100.0])).run(FixedPredictor(1024.0))
        assert res.cluster is None


class TestLifecycleHooks:
    @pytest.mark.parametrize("backend", ["replay", "event"])
    def test_hooks_called_with_context(self, backend):
        trace = make_trace([100.0, 200.0], workflow="hooked")
        pred = FixedPredictor(1024.0)
        OnlineSimulator(trace, backend=backend, time_to_failure=0.5).run(pred)
        assert pred.trace_ended == 1
        (ctx,) = pred.contexts
        assert isinstance(ctx, TraceContext)
        assert ctx.workflow == "hooked"
        assert ctx.n_tasks == 2
        assert ctx.time_to_failure == 0.5
        assert ctx.backend == backend


class TestEventBackendConcurrency:
    def test_parallel_tasks_compress_makespan(self):
        # Two 1 h tasks on the default 8-node cluster run side by side.
        trace = make_trace([1000.0, 1000.0])
        res = OnlineSimulator(trace, backend="event").run(FixedPredictor(2048.0))
        assert res.cluster is not None
        assert res.cluster.makespan_hours == pytest.approx(1.0)
        assert res.cluster.mean_queue_wait_hours == pytest.approx(0.0)
        # Accounting is unchanged: total occupancy is still 2 h.
        assert res.total_runtime_hours == pytest.approx(2.0)

    def test_capacity_limit_serializes_and_queues(self):
        tiny = ResourceManager(
            config=MachineConfig(name="tiny", memory_mb=2048.0), n_nodes=1
        )
        trace = make_trace([1000.0, 1000.0])
        res = OnlineSimulator(trace, manager=tiny, backend="event").run(
            FixedPredictor(1500.0)
        )
        assert res.cluster.makespan_hours == pytest.approx(2.0)
        # Second task waited a full hour for the single node.
        assert res.cluster.max_queue_wait_hours == pytest.approx(1.0)
        assert res.cluster.total_queue_wait_hours == pytest.approx(1.0)

    def test_kill_and_requeue(self):
        trace = make_trace([3000.0])
        res = OnlineSimulator(trace, backend="event", time_to_failure=0.5).run(
            FixedPredictor(2000.0)
        )
        assert res.num_failures == 1
        assert res.predictions[0].n_attempts == 2
        assert res.predictions[0].final_allocation_mb == pytest.approx(4000.0)
        # 0.5 h killed attempt + 1 h successful retry.
        assert res.cluster.makespan_hours == pytest.approx(1.5)
        assert res.total_wastage_gbh == pytest.approx(
            2000.0 * 0.5 / 1024 + 1000.0 / 1024
        )

    def test_wastage_matches_replay_for_static_predictor(self):
        # A predictor with no online learning is charged identically per
        # attempt, so both backends produce the same ledger totals.
        trace = make_trace(
            [1000.0, 3000.0, 500.0, 2500.0], runtimes=[1.0, 0.5, 2.0, 0.25]
        )
        replay = OnlineSimulator(trace, backend="replay").run(
            FixedPredictor(2048.0)
        )
        event = OnlineSimulator(trace, backend="event").run(
            FixedPredictor(2048.0)
        )
        assert event.total_wastage_gbh == pytest.approx(replay.total_wastage_gbh)
        assert event.num_failures == replay.num_failures
        assert event.total_runtime_hours == pytest.approx(
            replay.total_runtime_hours
        )

    def test_predictions_in_submission_order(self):
        trace = make_trace([1000.0, 3000.0, 500.0], runtimes=[2.0, 0.5, 1.0])
        res = OnlineSimulator(trace, backend="event").run(FixedPredictor(2048.0))
        assert [p.instance_id for p in res.predictions] == [0, 1, 2]

    def test_arrival_interval_staggers_submissions(self):
        trace = make_trace([1000.0, 1000.0])
        res = OnlineSimulator(
            trace, backend=EventDrivenBackend(arrival_interval_hours=0.25)
        ).run(FixedPredictor(2048.0))
        # Second task arrives at 0.25 h and runs 1 h with no queueing.
        assert res.cluster.makespan_hours == pytest.approx(1.25)
        assert res.cluster.mean_queue_wait_hours == pytest.approx(0.0)

    def test_utilization_and_timelines(self):
        tiny = ResourceManager(
            config=MachineConfig(name="tiny", memory_mb=2048.0), n_nodes=1
        )
        trace = make_trace([1000.0])
        res = OnlineSimulator(trace, manager=tiny, backend="event").run(
            FixedPredictor(1024.0)
        )
        # 1024 MB for 1 h on a 2048 MB node over a 1 h makespan => 0.5.
        assert res.cluster.node_utilization[0] == pytest.approx(0.5)
        assert res.cluster.node_busy_memory_gbh[0] == pytest.approx(1.0)
        timeline = res.cluster.node_timelines[0]
        assert timeline[0] == (0.0, 0.0)
        assert timeline[-1][1] == pytest.approx(0.0)  # everything released

    def test_invalid_backend_options(self):
        with pytest.raises(ValueError, match="arrival_interval_hours"):
            EventDrivenBackend(arrival_interval_hours=-1.0)
        with pytest.raises(ValueError, match="prediction_chunk"):
            EventDrivenBackend(prediction_chunk=0)

    def test_empty_trace(self):
        res = OnlineSimulator(make_trace([]), backend="event").run(
            FixedPredictor(1024.0)
        )
        assert res.num_tasks == 0
        assert res.cluster.makespan_hours == 0.0
        assert res.cluster.mean_utilization == 0.0


class TestUnschedulableTasks:
    @pytest.mark.parametrize("backend", ["replay", "event"])
    def test_peak_beyond_capacity_raises_typed_error(self, backend):
        trace = make_trace([200_000.0])  # > 128 GB node capacity
        with pytest.raises(UnschedulableTaskError) as exc:
            OnlineSimulator(trace, backend=backend).run(FixedPredictor(1024.0))
        err = exc.value
        assert err.task_type == "wf/t"
        assert err.peak_memory_mb == pytest.approx(200_000.0)
        assert err.capacity_mb == pytest.approx(128.0 * 1024)
        assert "unschedulable" in str(err)

    def test_is_a_runtime_error(self):
        # Back-compat: callers catching the old generic error still work.
        assert issubclass(UnschedulableTaskError, RuntimeError)


class TestPr2GoldenRegression:
    """Replay and flat-stream event outputs must stay bit-for-bit
    identical to the PR 2 engines.

    The golden numbers below were produced by the pre-DAG code (commit
    f46141f) on ``iwd`` (seed=3, scale=0.05) — replay totals plus an
    event run on a heterogeneous best-fit cluster with Poisson
    arrivals.  Any drift here means the DAG subsystem leaked into the
    flat paths.
    """

    GOLDEN = {
        "Sizey": (
            0.2617030552981169, 15, 0.34972282570254476,
            0.2762572640614041, 17, 1.856844235835395,
            0.0, 0.0013954166036171058,
        ),
        "Witt-Percentile": (
            0.33684742050403366, 11, 0.33687057934532866,
            0.35682648301315806, 11, 1.856844235835395,
            0.0, 0.0015649103637594012,
        ),
        "Workflow-Presets": (
            1.3580872160305373, 0, 0.29888201259001895,
            1.3580872160305373, 0, 1.856844235835395,
            0.0, 0.003671266224346433,
        ),
    }

    @pytest.mark.parametrize("method", sorted(GOLDEN))
    def test_flat_backends_match_pr2_outputs(self, method):
        from repro.experiments.factories import method_factories
        from repro.workflow.nfcore import build_workflow_trace

        trace = build_workflow_trace("iwd", seed=3, scale=0.05)
        factory = method_factories()[method]
        replay = OnlineSimulator(trace, backend="replay").run(factory())
        event = OnlineSimulator(
            trace,
            backend=EventDrivenBackend(arrival="poisson:40", seed=11),
            cluster="64g:2,128g:2",
            placement="best-fit",
        ).run(factory())
        (
            r_wastage, r_failures, r_runtime,
            e_wastage, e_failures, e_makespan,
            e_wait, e_util,
        ) = self.GOLDEN[method]
        assert replay.total_wastage_gbh == r_wastage
        assert replay.num_failures == r_failures
        assert replay.total_runtime_hours == r_runtime
        assert event.total_wastage_gbh == e_wastage
        assert event.num_failures == e_failures
        assert event.cluster.makespan_hours == e_makespan
        assert event.cluster.total_queue_wait_hours == e_wait
        assert event.cluster.mean_utilization == e_util
        assert event.workflows is None and replay.workflows is None


class TestManagerReuse:
    @pytest.mark.parametrize("backend", ["replay", "event"])
    def test_repeated_runs_on_one_manager(self, backend):
        manager = ResourceManager()
        trace = make_trace([1000.0, 3000.0])
        sim = OnlineSimulator(trace, manager=manager, backend=backend)
        first = sim.run(FixedPredictor(2048.0))
        second = sim.run(FixedPredictor(2048.0))
        assert second.total_wastage_gbh == pytest.approx(
            first.total_wastage_gbh
        )
        # No allocation bookkeeping leaked between runs.
        assert all(node.allocated_mb == 0.0 for node in manager.nodes)

    def test_release_all_resets_task_ids(self):
        manager = ResourceManager()
        manager.execute_attempt(
            allocated_mb=1024.0, true_peak_mb=512.0, runtime_hours=1.0
        )
        assert manager.next_task_id() > 0
        manager.release_all()
        assert manager.next_task_id() == 0

    def test_try_place_returns_none_when_full(self):
        manager = ResourceManager(
            config=MachineConfig(name="tiny", memory_mb=1024.0), n_nodes=1
        )
        node = manager.try_place(1000.0)
        assert node is not None
        node.allocate(manager.next_task_id(), 1000.0)
        assert manager.try_place(100.0) is None
