"""Streaming collectors: same summary as exact mode, O(1) retention.

``stream_collectors=True`` drops per-task lists (prediction logs,
attempt outcomes, node timelines) but must not change a single reported
aggregate: the summary is maintained identically in both modes, and the
JSONL spill preserves the full prediction logs on disk.
"""

import json
from dataclasses import asdict

import pytest

from repro.experiments.factories import method_factories
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.results import result_to_dict, summary_to_dict
from repro.workflow.nfcore import build_workflow_trace

from tests.sim.test_golden_regression import SCENARIOS


def build_sim(name, *, stream_collectors=False, spill=None):
    spec = SCENARIOS[name]
    trace = build_workflow_trace(
        spec["workflow"], seed=spec["trace_seed"], scale=spec["scale"]
    )
    backend = EventDrivenBackend(**spec["backend"])
    sim = OnlineSimulator(
        trace,
        backend=backend,
        stream_collectors=stream_collectors,
        spill=spill,
        **spec["sim"],
    )
    return sim, method_factories()[spec["method"]]()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_stream_summary_equals_exact_summary(name):
    sim, predictor = build_sim(name)
    exact = sim.run(predictor)
    sim, predictor = build_sim(name, stream_collectors=True)
    streamed = sim.run(predictor)

    assert summary_to_dict(streamed.summary) == summary_to_dict(exact.summary)
    # Ledger totals survive streaming (counter-backed, not list-backed).
    assert streamed.total_wastage_gbh == exact.total_wastage_gbh
    assert streamed.total_runtime_hours == exact.total_runtime_hours
    assert streamed.num_failures == exact.num_failures
    assert streamed.num_tasks == exact.num_tasks
    # Exact mode averages the predictions list (np.mean); streaming
    # divides a running sum — same value up to summation order.
    assert streamed.over_allocation_ratio() == pytest.approx(
        exact.over_allocation_ratio(), rel=1e-12
    )
    assert (
        streamed.ledger.wastage_by_task_type()
        == exact.ledger.wastage_by_task_type()
    )


def test_stream_mode_drops_raw_logs():
    sim, predictor = build_sim("flat_event_pr2", stream_collectors=True)
    res = sim.run(predictor)
    assert res.predictions == []
    assert res.ledger.outcomes == []
    assert res.cluster is None  # timelines not kept in streaming mode
    assert res.summary is not None and res.summary.n_nodes == 2


def test_exact_mode_unchanged_by_summary():
    """Exact mode still fills the full result schema (goldens rely on it)."""
    sim, predictor = build_sim("flat_event_pr2")
    res = sim.run(predictor)
    assert res.predictions and res.ledger.outcomes
    assert res.cluster is not None
    assert res.summary is not None


@pytest.mark.parametrize("name", ("flat_event_pr2", "dag_engine_pr3"))
def test_spill_jsonl_matches_exact_predictions(tmp_path, name):
    """Spilled lines reproduce exact mode's prediction logs verbatim."""
    sim, predictor = build_sim(name)
    exact = sim.run(predictor)

    spill = tmp_path / "predictions.jsonl"
    sim, predictor = build_sim(
        name, stream_collectors=True, spill=str(spill)
    )
    sim.run(predictor)

    lines = [
        json.loads(line)
        for line in spill.read_text().splitlines()
        if line
    ]
    # Spill is in completion order; result.predictions is sorted by
    # submission index — compare as multisets keyed by that index.
    spilled = sorted(lines, key=lambda d: d["timestamp"])
    expected = [asdict(log) for log in exact.predictions]
    assert spilled == expected


def test_spill_with_kept_logs_too(tmp_path):
    """Spill composes with exact mode: both the list and the file exist."""
    spill = tmp_path / "predictions.jsonl"
    sim, predictor = build_sim("flat_event_pr2", spill=str(spill))
    res = sim.run(predictor)
    assert res.predictions
    lines = spill.read_text().splitlines()
    assert len(lines) == len(res.predictions)
