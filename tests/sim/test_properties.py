"""Property-based tests of simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace

peaks_strategy = st.lists(
    st.floats(min_value=10.0, max_value=50_000.0), min_size=1, max_size=25
)
alloc_strategy = st.floats(min_value=10.0, max_value=80_000.0)


def build_trace(peaks):
    tt = TaskType(name="t", workflow="wf", preset_memory_mb=128.0 * 1024)
    return WorkflowTrace(
        "wf",
        [
            TaskInstance(
                task_type=tt,
                instance_id=i,
                input_size_mb=1.0,
                peak_memory_mb=p,
                runtime_hours=0.5,
            )
            for i, p in enumerate(peaks)
        ],
    )


class Fixed(MemoryPredictor):
    name = "Fixed"

    def __init__(self, allocation_mb):
        self.allocation_mb = allocation_mb

    def predict(self, task: TaskSubmission) -> float:
        return self.allocation_mb


class TestSimulatorInvariants:
    @given(peaks_strategy, alloc_strategy)
    @settings(max_examples=60, deadline=None)
    def test_every_task_eventually_succeeds(self, peaks, alloc):
        res = OnlineSimulator(build_trace(peaks)).run(Fixed(alloc))
        assert res.num_tasks == len(peaks)
        for log in res.predictions:
            assert log.final_allocation_mb >= log.true_peak_mb

    @given(peaks_strategy, alloc_strategy)
    @settings(max_examples=60, deadline=None)
    def test_wastage_non_negative_and_finite(self, peaks, alloc):
        res = OnlineSimulator(build_trace(peaks)).run(Fixed(alloc))
        assert res.total_wastage_gbh >= 0.0
        assert np.isfinite(res.total_wastage_gbh)

    @given(peaks_strategy, alloc_strategy)
    @settings(max_examples=60, deadline=None)
    def test_runtime_at_least_sum_of_true_runtimes(self, peaks, alloc):
        # Every task runs to completion at least once; retries only add.
        res = OnlineSimulator(build_trace(peaks)).run(Fixed(alloc))
        assert res.total_runtime_hours >= 0.5 * len(peaks) - 1e-9

    @given(peaks_strategy, alloc_strategy)
    @settings(max_examples=60, deadline=None)
    def test_failures_equal_extra_attempts(self, peaks, alloc):
        res = OnlineSimulator(build_trace(peaks)).run(Fixed(alloc))
        extra = sum(log.n_attempts - 1 for log in res.predictions)
        assert res.num_failures == extra

    @given(peaks_strategy)
    @settings(max_examples=30, deadline=None)
    def test_exact_allocation_wastes_nothing(self, peaks):
        # An oracle allocating the exact peak never fails, never wastes.
        class Oracle(MemoryPredictor):
            name = "Oracle"

            def __init__(self, trace):
                self._peaks = {i.instance_id: i.peak_memory_mb for i in trace}

            def predict(self, task):
                return self._peaks[task.instance_id]

        trace = build_trace(peaks)
        res = OnlineSimulator(trace).run(Oracle(trace))
        assert res.num_failures == 0
        assert res.total_wastage_gbh == pytest.approx(0.0, abs=1e-9)

    @given(
        peaks_strategy,
        alloc_strategy,
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_lower_ttf_never_increases_wastage(self, peaks, alloc, ttf):
        # Earlier failures strictly reduce lost work (Fig. 8a vs 8b).
        trace = build_trace(peaks)
        full = OnlineSimulator(trace, time_to_failure=1.0).run(Fixed(alloc))
        early = OnlineSimulator(trace, time_to_failure=ttf).run(Fixed(alloc))
        assert early.total_wastage_gbh <= full.total_wastage_gbh + 1e-9
        assert early.total_runtime_hours <= full.total_runtime_hours + 1e-9
