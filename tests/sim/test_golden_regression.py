"""Golden bit-for-bit regression tests for the simulation engines.

The JSON files under ``tests/golden/`` pin the exact
:class:`~repro.sim.results.SimulationResult` outputs of the pre-kernel
engines — the PR 2 flat event backend and the PR 3 DAG scheduling
engine — on small but non-trivial scenarios (contention, kills,
re-queues, heterogeneous nodes, stochastic arrivals).  Any refactor of
the simulation layer must keep these outputs *identical to the last
bit*: the ledger's attempt sequence, every prediction log, the cluster
metrics including per-node timelines, and the per-workflow metrics.

Regenerate (only when an intentional semantic change is being made,
never to paper over a refactor diff)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/sim/test_golden_regression.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.factories import method_factories
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.results import result_to_dict
from repro.workflow.nfcore import build_workflow_trace

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: name -> (method, backend kwargs, simulator kwargs).  Scenarios are
#: chosen to exercise kills/re-queues under contention on heterogeneous
#: nodes; methods are cheap non-learning/lightweight predictors so the
#: pin stays fast and failure-prone.
SCENARIOS = {
    "flat_event_pr2": dict(
        workflow="iwd",
        scale=0.05,
        trace_seed=3,
        method="Witt-Percentile",
        backend=dict(arrival="poisson:600", seed=7),
        sim=dict(
            time_to_failure=0.7, cluster="4g:1,6g:1", placement="best-fit"
        ),
    ),
    "flat_event_bursty_presets": dict(
        workflow="iwd",
        scale=0.05,
        trace_seed=3,
        method="Workflow-Presets",
        backend=dict(arrival="bursty:8x0.005", seed=5),
        sim=dict(
            time_to_failure=1.0, cluster="4g:2", placement="first-fit"
        ),
    ),
    "dag_engine_pr3": dict(
        workflow="iwd",
        scale=0.05,
        trace_seed=3,
        method="Witt-Percentile",
        backend=dict(
            dag="trace",
            workflow_arrival="3@poisson:8@tenants:2",
            seed=11,
        ),
        sim=dict(
            time_to_failure=0.7, cluster="4g:1,6g:1", placement="best-fit"
        ),
    ),
    "dag_engine_linear": dict(
        workflow="iwd",
        scale=0.05,
        trace_seed=3,
        method="Workflow-Presets",
        backend=dict(dag="linear", workflow_arrival="2@fixed:0.05", seed=2),
        sim=dict(
            time_to_failure=1.0, cluster="4g:2", placement="first-fit"
        ),
    ),
}


def run_scenario(name: str) -> dict:
    spec = SCENARIOS[name]
    trace = build_workflow_trace(
        spec["workflow"], seed=spec["trace_seed"], scale=spec["scale"]
    )
    backend = EventDrivenBackend(**spec["backend"])
    sim = OnlineSimulator(trace, backend=backend, **spec["sim"])
    predictor = method_factories()[spec["method"]]()
    return result_to_dict(sim.run(predictor))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    actual = run_scenario(name)
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    expected = json.loads(path.read_text())
    # Round-trip through JSON so float representation is identical on
    # both sides; any difference is a genuine semantic drift.
    actual = json.loads(json.dumps(actual))
    assert actual == expected, f"golden output drifted for {name}"


def test_goldens_have_coverage():
    """The pinned scenarios must exercise the interesting machinery."""
    flat = run_scenario("flat_event_pr2")
    dag = run_scenario("dag_engine_pr3")
    assert any(not a["success"] for a in flat["attempts"]), (
        "flat golden scenario no longer produces kills/re-queues"
    )
    assert any(not a["success"] for a in dag["attempts"]), (
        "DAG golden scenario no longer produces kills/re-queues"
    )
    assert flat["cluster"]["total_queue_wait_hours"] > 0
    assert dag["workflows"] is not None and len(dag["workflows"]) == 3
