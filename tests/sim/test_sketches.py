"""QuantileSketch / RunningStat: accuracy, merging, determinism.

The acceptance bar from the scale-out work: sketch quantiles stay
within 1% relative error of ``np.quantile`` on real simulation data
(a mid-size scenario's per-attempt wastage distribution) — pinned here
so collector compression can never silently degrade the summaries.
"""

import pickle

import numpy as np
import pytest

from repro.experiments.factories import method_factories
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.sketches import QUANTILE_POINTS, QuantileSketch, RunningStat
from repro.workflow.nfcore import build_workflow_trace


def rel_err(approx: float, exact: float) -> float:
    return abs(approx - exact) / abs(exact) if exact else abs(approx)


# ---------------------------------------------------------------------------
# RunningStat


def test_running_stat_exact_and_mergeable():
    rng = np.random.default_rng(0)
    values = rng.normal(5.0, 2.0, size=1000)
    stat = RunningStat()
    for v in values:
        stat.add(float(v))
    assert stat.n == 1000
    assert stat.total == pytest.approx(float(values.sum()))
    assert stat.mean == pytest.approx(float(values.mean()))
    assert stat.min == float(values.min())
    assert stat.max == float(values.max())

    left, right = RunningStat(), RunningStat()
    for v in values[:400]:
        left.add(float(v))
    for v in values[400:]:
        right.add(float(v))
    left.merge(right)
    assert left.n == stat.n
    assert left.total == pytest.approx(stat.total)
    assert left.min == stat.min and left.max == stat.max


def test_running_stat_empty_mean_is_zero():
    assert RunningStat().mean == 0.0


# ---------------------------------------------------------------------------
# QuantileSketch on synthetic distributions


@pytest.mark.parametrize(
    "name,values",
    [
        ("lognormal", np.random.default_rng(1).lognormal(0.0, 1.5, 50_000)),
        ("exponential", np.random.default_rng(2).exponential(3.0, 50_000)),
        ("uniform", np.random.default_rng(3).uniform(0.0, 10.0, 50_000)),
    ],
)
def test_sketch_within_one_percent(name, values):
    sketch = QuantileSketch()
    sketch.extend(float(v) for v in values)
    for label, q in QUANTILE_POINTS:
        exact = float(np.quantile(values, q))
        assert rel_err(sketch.quantile(q), exact) < 0.01, (
            f"{name} {label}: sketch {sketch.quantile(q)} vs exact {exact}"
        )


def test_sketch_bimodal_tails_tight_median_bounded():
    """Bimodal data: tails stay within 1%; the median is the hard case.

    A t-digest interpolates across the inter-modal gap, where the exact
    median of a balanced mixture sits — so the p50 bound is looser (5%)
    by construction, while everything in either mode stays tight.
    """
    values = np.concatenate(
        [
            np.random.default_rng(4).normal(1.0, 0.2, 25_000),
            np.random.default_rng(5).normal(9.0, 0.5, 25_000),
        ]
    )
    sketch = QuantileSketch()
    sketch.extend(float(v) for v in values)
    for label, q in QUANTILE_POINTS:
        exact = float(np.quantile(values, q))
        bound = 0.05 if label == "p50" else 0.01
        assert rel_err(sketch.quantile(q), exact) < bound, (
            f"{label}: sketch {sketch.quantile(q)} vs exact {exact}"
        )


def test_small_streams_are_exact():
    """Below the compression threshold every point is its own centroid."""
    rng = np.random.default_rng(6)
    values = rng.normal(0.0, 1.0, 100)
    sketch = QuantileSketch()
    sketch.extend(float(v) for v in values)
    # Median of 100 points, centered-mass interpolation: midpoint of the
    # 50th/51st order statistics.
    s = np.sort(values)
    assert sketch.quantile(0.5) == pytest.approx((s[49] + s[50]) / 2.0)
    assert sketch.quantile(0.0) == float(s[0])
    assert sketch.quantile(1.0) == float(s[-1])


def test_sketch_deterministic():
    """Same stream -> identical centroids (no RNG anywhere)."""
    rng = np.random.default_rng(7)
    values = [float(v) for v in rng.lognormal(1.0, 1.0, 20_000)]
    a, b = QuantileSketch(), QuantileSketch()
    a.extend(values)
    b.extend(values)
    a._compress()
    b._compress()
    assert a._means == b._means
    assert a._weights == b._weights


def test_merge_matches_single_sketch_and_is_monotone():
    """Sharded sketches merge to near the single-stream answer.

    Regression for the unsorted-merge bug: ``merge`` concatenates
    centroid lists, so it must force a re-sort/compress — without it
    quantiles came out non-monotone (p50 > p90).
    """
    rng = np.random.default_rng(8)
    values = [float(v) for v in rng.lognormal(0.0, 1.0, 49_000)]
    merged = QuantileSketch()
    for i in range(7):  # 7 shards, interleaved slices
        shard = QuantileSketch()
        shard.extend(values[i::7])
        merged.merge(shard)
    assert merged.n == len(values)
    qs = [merged.quantile(q) for _, q in QUANTILE_POINTS]
    assert qs == sorted(qs), f"non-monotone quantiles: {qs}"
    for (_, q), got in zip(QUANTILE_POINTS, qs):
        assert rel_err(got, float(np.quantile(values, q))) < 0.01


def test_sketch_pickle_round_trip():
    rng = np.random.default_rng(9)
    sketch = QuantileSketch()
    sketch.extend(float(v) for v in rng.exponential(1.0, 5_000))
    clone = pickle.loads(pickle.dumps(sketch))
    for _, q in QUANTILE_POINTS:
        assert clone.quantile(q) == sketch.quantile(q)
    assert clone.n == sketch.n


def test_sketch_validates_inputs():
    with pytest.raises(ValueError, match="compression"):
        QuantileSketch(compression=4)
    sketch = QuantileSketch()
    with pytest.raises(ValueError, match="q must be"):
        sketch.quantile(1.5)
    assert np.isnan(sketch.quantile(0.5))  # empty sketch


# ---------------------------------------------------------------------------
# Accuracy on real simulation data (the acceptance pin)


def test_sketch_accuracy_on_mid_size_scenario():
    """<=1% relative error vs np.quantile on a real wastage distribution.

    Runs a mid-size flat scenario in exact mode, rebuilds a sketch from
    the ledger's per-attempt wastage values, and checks both (a) the
    rebuilt sketch hits every reported quantile within 1% of exact, and
    (b) the run's own summary sketch — fed in completion order by the
    streaming collector — agrees with the rebuild, pinning that the
    collector feeds the same stream.
    """
    trace = build_workflow_trace("mag", seed=0, scale=1.0)
    sim = OnlineSimulator(
        trace,
        backend=EventDrivenBackend(arrival="poisson:400", seed=1),
        time_to_failure=0.7,
        cluster="256g:4",
        placement="best-fit",
    )
    result = sim.run(method_factories()["Witt-Percentile"]())
    values = [o.wastage_gbh for o in result.ledger.outcomes]
    assert len(values) > 5000, "scenario no longer mid-size"

    rebuilt = QuantileSketch()
    rebuilt.extend(values)
    summary_sketch = result.summary.wastage_sketch
    assert summary_sketch.n == len(values)
    for label, q in QUANTILE_POINTS:
        exact = float(np.quantile(values, q))
        assert rel_err(rebuilt.quantile(q), exact) < 0.01, (
            f"{label}: sketch {rebuilt.quantile(q)} vs exact {exact}"
        )
        assert summary_sketch.quantile(q) == rebuilt.quantile(q)


def test_extend_bit_identical_to_per_value_add():
    """Bulk extend = the exact same state as a loop of add() calls.

    PR 10 rewrote extend() with one batched stat update and
    chunk-to-the-boundary buffer fills; the compress points (and hence
    centroids) must land exactly where per-value adds put them.  Sizes
    straddle the compress boundary: empty, single, cap-1, cap, cap+1,
    and several caps plus a remainder.
    """
    rng = np.random.default_rng(7)
    cap = QuantileSketch(compression=16)._cap
    for size in (0, 1, cap - 1, cap, cap + 1, 3 * cap + 7):
        values = rng.lognormal(1.0, 1.5, size=size)
        one = QuantileSketch(compression=16)
        two = QuantileSketch(compression=16)
        for v in values:
            one.add(v)
        two.extend(values)
        assert one._means == two._means
        assert one._weights == two._weights
        assert one._buffer == two._buffer
        assert one.stat.__getstate__() == two.stat.__getstate__()
        if size:  # empty sketches report nan, which never compares equal
            for q in (0.0, 0.25, 0.5, 0.9, 1.0):
                assert one.quantile(q) == two.quantile(q)


def test_extend_resumes_partial_buffer():
    # extend() on a sketch that already holds a partial buffer must hit
    # the same boundaries as continuing with add().
    one = QuantileSketch(compression=16)
    two = QuantileSketch(compression=16)
    head = [float(i) for i in range(5)]
    tail = [float(i) * 1.5 for i in range(100)]
    for v in head:
        one.add(v)
        two.add(v)
    for v in tail:
        one.add(v)
    two.extend(tail)
    assert one._means == two._means
    assert one._weights == two._weights
    assert one._buffer == two._buffer
    assert one.stat.__getstate__() == two.stat.__getstate__()
