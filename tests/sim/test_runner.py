"""Tests for the experiment grid runner, including the process pool."""

import pytest

from repro.experiments.factories import (
    make_witt_percentile,
    make_workflow_presets,
)
from repro.sim.runner import run_cell, run_grid
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(workflow, peaks):
    tt = TaskType(name="t", workflow=workflow, preset_memory_mb=4096.0)
    return WorkflowTrace(
        workflow,
        [
            TaskInstance(
                task_type=tt,
                instance_id=i,
                input_size_mb=10.0 * (i + 1),
                peak_memory_mb=p,
                runtime_hours=0.5,
            )
            for i, p in enumerate(peaks)
        ],
    )


TRACES = {
    "wf_a": make_trace("wf_a", [1000.0, 1500.0, 800.0, 1200.0]),
    "wf_b": make_trace("wf_b", [2000.0, 2500.0, 2200.0]),
}
FACTORIES = {
    "Workflow-Presets": make_workflow_presets,
    "Witt-Percentile": make_witt_percentile,
}


class TestRunGrid:
    def test_serial_grid_shape(self):
        results = run_grid(TRACES, FACTORIES)
        assert set(results) == set(FACTORIES)
        for per_wf in results.values():
            assert set(per_wf) == set(TRACES)

    def test_process_pool_matches_serial(self):
        serial = run_grid(TRACES, FACTORIES, n_workers=1)
        pooled = run_grid(TRACES, FACTORIES, n_workers=2)
        for method in FACTORIES:
            for wf in TRACES:
                a, b = serial[method][wf], pooled[method][wf]
                assert b.total_wastage_gbh == pytest.approx(a.total_wastage_gbh)
                assert b.num_failures == a.num_failures
                assert b.num_tasks == a.num_tasks
                assert [p.final_allocation_mb for p in b.predictions] == [
                    p.final_allocation_mb for p in a.predictions
                ]

    def test_process_pool_event_backend(self):
        pooled = run_grid(TRACES, FACTORIES, n_workers=2, backend="event")
        for method in FACTORIES:
            for wf in TRACES:
                res = pooled[method][wf]
                assert res.cluster is not None
                assert res.cluster.makespan_hours > 0.0

    def test_backend_threaded_through_run_cell(self):
        replay = run_cell(TRACES["wf_a"], make_workflow_presets)
        event = run_cell(TRACES["wf_a"], make_workflow_presets, backend="event")
        assert replay.cluster is None
        assert event.cluster is not None
        # Presets never fail and never learn, so wastage is identical.
        assert event.total_wastage_gbh == pytest.approx(
            replay.total_wastage_gbh
        )
