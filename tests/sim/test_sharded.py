"""Sharded grid runner: partitioning, determinism, conservation, merge.

Sharding changes *contention* (each shard queues on its own sub-cluster)
but must never lose or duplicate work: every task lands in exactly one
shard with its unsharded arrival time, the cluster is dealt node-by-node,
and the merged summary's conserved quantities (task counts, instance
counts, node counts) match the unsharded run exactly.
"""

import pytest

from repro.experiments.factories import method_factories
from repro.sim.results import summary_to_dict
from repro.sim.runner import partition_cluster, run_cell, run_sharded
from repro.workflow.nfcore import build_workflow_trace

from tests.sim.test_golden_regression import SCENARIOS


def scenario_inputs(name):
    """(trace, factory, cell kwargs) for a golden scenario, run_sharded style."""
    spec = SCENARIOS[name]
    trace = build_workflow_trace(
        spec["workflow"], seed=spec["trace_seed"], scale=spec["scale"]
    )
    factory = method_factories()[spec["method"]]
    return trace, factory, spec


class TestPartitionCluster:
    def test_round_robin_deal(self):
        # Nodes in spec order: 4g,4g,4g,6g,6g — dealt mod 2.
        assert partition_cluster("4g:3,6g:2", 2) == ["4g:2,6g:1", "4g:1,6g:1"]

    def test_single_shard_identity(self):
        assert partition_cluster("4g:1,6g:1", 1) == ["4g:1,6g:1"]

    def test_every_shard_gets_a_node(self):
        specs = partition_cluster("8g:5", 5)
        assert specs == ["8g:1"] * 5

    def test_fewer_nodes_than_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            partition_cluster("8g:2", 3)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            partition_cluster("notaspec", 2)


class TestShardedFlat:
    NAME = "flat_event_pr2"

    def test_task_conservation_and_determinism(self):
        trace, factory, spec = scenario_inputs(self.NAME)
        kwargs = dict(
            shards=2,
            time_to_failure=spec["sim"]["time_to_failure"],
            cluster=spec["sim"]["cluster"],
            placement=spec["sim"]["placement"],
            backend="event",
            n_workers=1,
        )
        # The sharded backend re-derives arrivals from the same spec, so
        # thread the golden backend kwargs through a configured backend.
        from repro.sim.backends.event import EventDrivenBackend

        kwargs["backend"] = EventDrivenBackend(**spec["backend"])
        first = run_sharded(trace, factory, **kwargs)
        second = run_sharded(trace, factory, **kwargs)

        unsharded = run_cell(
            workload=trace,
            factory=factory,
            backend=EventDrivenBackend(**spec["backend"]),
            time_to_failure=spec["sim"]["time_to_failure"],
            cluster=spec["sim"]["cluster"],
            placement=spec["sim"]["placement"],
        )
        assert first.summary.n_tasks == unsharded.num_tasks
        assert first.summary.n_nodes == 2
        assert summary_to_dict(first.summary) == summary_to_dict(
            second.summary
        )

    def test_single_shard_equals_streaming_run(self):
        """shards=1 is exactly the unsharded streaming run."""
        from repro.sim.backends.event import EventDrivenBackend
        from repro.sim.engine import OnlineSimulator

        trace, factory, spec = scenario_inputs(self.NAME)
        sharded = run_sharded(
            trace,
            factory,
            shards=1,
            time_to_failure=spec["sim"]["time_to_failure"],
            cluster=spec["sim"]["cluster"],
            placement=spec["sim"]["placement"],
            backend=EventDrivenBackend(**spec["backend"]),
        )
        plain = OnlineSimulator(
            trace,
            backend=EventDrivenBackend(**spec["backend"]),
            stream_collectors=True,
            **spec["sim"],
        ).run(factory())
        assert summary_to_dict(sharded.summary) == summary_to_dict(
            plain.summary
        )


class TestShardedDag:
    NAME = "dag_engine_pr3"

    def run_sharded_dag(self, n_workers):
        from repro.sim.backends.event import EventDrivenBackend

        trace, factory, spec = scenario_inputs(self.NAME)
        bk = spec["backend"]
        return run_sharded(
            trace,
            factory,
            shards=2,
            time_to_failure=spec["sim"]["time_to_failure"],
            cluster=spec["sim"]["cluster"],
            placement=spec["sim"]["placement"],
            backend=EventDrivenBackend(seed=bk["seed"]),
            dag=bk["dag"],
            workflow_arrival=bk["workflow_arrival"],
            n_workers=n_workers,
        )

    def test_instances_partitioned_and_conserved(self):
        res = self.run_sharded_dag(n_workers=1)
        s = res.summary
        assert s.n_workflow_instances == 3  # 2 + 1 across the two shards
        trace, _, _ = scenario_inputs(self.NAME)
        assert s.n_tasks == 3 * len(trace)
        assert s.n_nodes == 2

    def test_multiprocess_equals_sequential(self):
        """Worker processes change nothing: merge is order-independent
        for counters and deterministic for sketches (fixed shard order)."""
        seq = self.run_sharded_dag(n_workers=1)
        par = self.run_sharded_dag(n_workers=2)
        assert summary_to_dict(seq.summary) == summary_to_dict(par.summary)

    def test_merged_result_is_summary_only(self):
        res = self.run_sharded_dag(n_workers=1)
        assert res.cluster is None
        assert res.workflows is None
        assert res.predictions == []
        # Ledger-backed properties still work off the merged counters.
        assert res.total_wastage_gbh == pytest.approx(
            res.summary.total_wastage_gbh
        )
        assert res.num_failures == res.summary.n_failures

    def test_merged_quantiles_monotone(self):
        s = self.run_sharded_dag(n_workers=1).summary
        for sketch in (s.wastage_sketch, s.queue_wait_sketch):
            qs = [sketch.quantile(q) for q in (0.5, 0.9, 0.95, 0.99)]
            assert qs == sorted(qs)


class TestShardedGuards:
    def test_node_outage_rejected(self):
        trace, factory, spec = scenario_inputs("flat_event_pr2")
        with pytest.raises(ValueError, match="node_outage"):
            run_sharded(
                trace,
                factory,
                shards=2,
                cluster="4g:2",
                node_outage="0.1:1:0",
            )

    def test_requires_workload_and_factory(self):
        with pytest.raises(ValueError, match="workload"):
            run_sharded(None, lambda: None, shards=2)
        with pytest.raises(ValueError, match="factory"):
            run_sharded("synthetic:iwd", None, shards=2)

    def test_spill_dir_writes_per_shard_files(self, tmp_path):
        from repro.sim.backends.event import EventDrivenBackend

        trace, factory, spec = scenario_inputs("flat_event_pr2")
        run_sharded(
            trace,
            factory,
            shards=2,
            time_to_failure=spec["sim"]["time_to_failure"],
            cluster=spec["sim"]["cluster"],
            placement=spec["sim"]["placement"],
            backend=EventDrivenBackend(**spec["backend"]),
            n_workers=1,
            spill_dir=str(tmp_path),
        )
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["shard-0.jsonl", "shard-1.jsonl"]
        total = sum(
            len(p.read_text().splitlines()) for p in tmp_path.iterdir()
        )
        assert total == len(trace)
