"""Checkpoint/resume determinism: interrupted == uninterrupted, bit-for-bit.

Every test pauses a golden-scenario kernel at some simulation-clock
boundary, serializes it, resumes from the file, and asserts the final
:func:`~repro.sim.results.result_to_dict` equals the uninterrupted
run's — the same equality the golden regression suite pins, so any
state that fails to survive the pickle round-trip (heap order, RNG
streams, dispatch generations, collector aggregates, the lazy flat
driver's cursor) shows up as a hard diff.

Boundaries are picked as fractions of each scenario's makespan so the
pause lands mid-flight: tasks running, queues occupied, kills pending —
plus dedicated mid-outage-window and mid-DAG-release cases.
"""

import pickle

import pytest

from repro.experiments.factories import method_factories
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.kernel.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.results import result_to_dict
from repro.workflow.nfcore import build_workflow_trace

from tests.sim.test_golden_regression import SCENARIOS, run_scenario

#: Golden scenarios driven through pause/resume: flat with kills, DAG
#: with tenanted Poisson arrivals (mid-release pauses), DAG linear.
NAMES = ("flat_event_pr2", "dag_engine_pr3", "dag_engine_linear")
#: Pause points as fractions of each scenario's makespan.
FRACTIONS = (0.25, 0.6, 0.9)


def build_sim(name):
    spec = SCENARIOS[name]
    trace = build_workflow_trace(
        spec["workflow"], seed=spec["trace_seed"], scale=spec["scale"]
    )
    backend = EventDrivenBackend(**spec["backend"])
    sim = OnlineSimulator(trace, backend=backend, **spec["sim"])
    return sim, method_factories()[spec["method"]]()


@pytest.fixture(scope="module")
def baselines():
    """Uninterrupted result dicts (and makespans) per scenario."""
    return {name: run_scenario(name) for name in NAMES}


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("frac", FRACTIONS)
def test_pause_resume_is_bit_for_bit(tmp_path, baselines, name, frac):
    expected = baselines[name]
    stop = expected["cluster"]["makespan_hours"] * frac
    ck = str(tmp_path / "state.ckpt")

    sim, predictor = build_sim(name)
    paused = sim.run(predictor, checkpoint=ck, stop_after=stop)
    assert paused is None, "run should pause, not complete, at stop_after"

    result = OnlineSimulator.resume(ck)
    assert result is not None
    assert result_to_dict(result) == expected


@pytest.mark.parametrize("name", ("flat_event_pr2", "dag_engine_pr3"))
def test_double_checkpoint_chain(tmp_path, baselines, name):
    """Pause twice (two files), resume twice: still identical."""
    expected = baselines[name]
    makespan = expected["cluster"]["makespan_hours"]
    ck1 = str(tmp_path / "first.ckpt")
    ck2 = str(tmp_path / "second.ckpt")

    sim, predictor = build_sim(name)
    assert sim.run(predictor, checkpoint=ck1, stop_after=makespan * 0.3) is None
    assert (
        OnlineSimulator.resume(ck1, checkpoint=ck2, stop_after=makespan * 0.7)
        is None
    )
    result = OnlineSimulator.resume(ck2)
    assert result is not None
    assert result_to_dict(result) == expected


@pytest.mark.parametrize("name", NAMES)
def test_checkpoint_every_slicing(tmp_path, baselines, name):
    """Driving in small slices (checkpoint at every pause) changes nothing."""
    expected = baselines[name]
    ck = str(tmp_path / "state.ckpt")
    sim, predictor = build_sim(name)
    result = sim.run(predictor, checkpoint=ck, checkpoint_every=0.05)
    assert result is not None
    assert result_to_dict(result) == expected
    # The file left behind is the last mid-run pause — still loadable.
    kernel = load_checkpoint(ck)
    assert kernel._started


def test_pause_inside_outage_window(tmp_path):
    """Checkpoint while a node is drained: outage end event survives."""

    def build():
        trace = build_workflow_trace("iwd", seed=3, scale=0.05)
        backend = EventDrivenBackend(
            arrival="poisson:600", seed=7, node_outage="0.01:0.5:0"
        )
        sim = OnlineSimulator(
            trace,
            backend=backend,
            time_to_failure=0.7,
            cluster="4g:1,6g:1",
            placement="best-fit",
        )
        return sim, method_factories()["Witt-Percentile"]()

    sim, predictor = build()
    expected = result_to_dict(sim.run(predictor))

    ck = str(tmp_path / "state.ckpt")
    sim, predictor = build()
    # 0.2h is inside the [0.01, 0.51] drain window of node 0.
    assert sim.run(predictor, checkpoint=ck, stop_after=0.2) is None
    kernel = load_checkpoint(ck)
    assert kernel.now <= 0.2
    result = OnlineSimulator.resume(ck)
    assert result is not None
    assert result_to_dict(result) == expected


def test_checkpoint_requires_started_kernel(tmp_path):
    sim, predictor = build_sim("flat_event_pr2")
    kernel = sim.backend.build_kernel(
        sim.source, predictor, sim.manager, sim.time_to_failure
    )
    with pytest.raises(ValueError, match="has not started"):
        save_checkpoint(kernel, str(tmp_path / "nope.ckpt"))


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "garbage.ckpt"
    path.write_bytes(pickle.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="not a repro simulation checkpoint"):
        load_checkpoint(str(path))
    path.write_bytes(
        pickle.dumps(
            {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION + 1}
        )
    )
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(str(path))
