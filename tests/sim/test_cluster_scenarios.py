"""Heterogeneous-cluster scenarios: backend equivalence and accounting.

Covers the cluster-accounting sweep: replay and event backends must
charge attempt-for-attempt identical wastage on heterogeneous clusters,
per-node utilization must be measured against each node's own capacity,
every dispatch's queue wait must be counted (including re-queues after a
kill), and the kill-escalation floor must route through the configured
doubling factor on both backends.
"""

import pytest

from repro.cluster.manager import ResourceManager
from repro.sim import EventDrivenBackend, OnlineSimulator, ReplayBackend
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(peaks, runtimes=None, inputs=None, workflow="wf", preset=4096.0):
    tt = TaskType(name="t", workflow=workflow, preset_memory_mb=preset)
    runtimes = runtimes or [1.0] * len(peaks)
    inputs = inputs or [100.0] * len(peaks)
    insts = [
        TaskInstance(
            task_type=tt,
            instance_id=i,
            input_size_mb=x,
            peak_memory_mb=p,
            runtime_hours=r,
        )
        for i, (p, r, x) in enumerate(zip(peaks, runtimes, inputs))
    ]
    return WorkflowTrace(workflow, insts)


class FixedPredictor(MemoryPredictor):
    """Allocates a constant; never learns (replay == event totals)."""

    name = "Fixed"

    def __init__(self, allocation_mb: float):
        self.allocation_mb = allocation_mb

    def predict(self, task: TaskSubmission) -> float:
        return self.allocation_mb


class InputSizedPredictor(MemoryPredictor):
    """Allocates exactly the submission's input size (per-task control)."""

    name = "InputSized"

    def predict(self, task: TaskSubmission) -> float:
        return task.input_size_mb


class StubbornPredictor(FixedPredictor):
    """Re-proposes the failed allocation, forcing the escalation floor."""

    name = "Stubborn"

    def on_failure(self, task, failed_allocation_mb, attempt):
        return failed_allocation_mb


class TestHeterogeneousEquivalence:
    def test_ledger_totals_match_replay(self):
        # Peaks straddle the small-node capacity: 5000 and 7000 MB only
        # ever fit the 8g node, and 7000 needs two retries.
        trace = make_trace(
            [1000.0, 5000.0, 2500.0, 7000.0],
            runtimes=[1.0, 0.5, 2.0, 0.25],
        )
        results = {}
        for backend in ("replay", "event"):
            manager = ResourceManager.from_spec("2g:2,8g:1")
            results[backend] = OnlineSimulator(
                trace, manager=manager, backend=backend
            ).run(FixedPredictor(3000.0))
        replay, event = results["replay"], results["event"]
        assert event.total_wastage_gbh == pytest.approx(
            replay.total_wastage_gbh
        )
        assert event.num_failures == replay.num_failures
        assert event.total_runtime_hours == pytest.approx(
            replay.total_runtime_hours
        )
        assert [p.n_attempts for p in event.predictions] == [
            p.n_attempts for p in replay.predictions
        ]
        assert [p.final_allocation_mb for p in event.predictions] == [
            p.final_allocation_mb for p in replay.predictions
        ]

    @pytest.mark.parametrize("placement", ["first-fit", "best-fit", "worst-fit"])
    def test_placement_policy_does_not_change_wastage(self, placement):
        # Placement moves tasks between nodes but never changes what a
        # task is charged — the ledger is policy-invariant.
        trace = make_trace([1000.0, 3500.0, 500.0, 2500.0])
        manager = ResourceManager.from_spec(
            "4g:2,8g:2", placement=placement
        )
        res = OnlineSimulator(trace, manager=manager, backend="event").run(
            FixedPredictor(3000.0)
        )
        baseline = OnlineSimulator(trace, backend="replay").run(
            FixedPredictor(3000.0)
        )
        assert res.total_wastage_gbh == pytest.approx(
            baseline.total_wastage_gbh
        )
        assert res.num_failures == baseline.num_failures

    def test_event_deterministic_under_poisson_seed(self):
        trace = make_trace([1000.0] * 12, runtimes=[0.5] * 12)
        def run_once():
            manager = ResourceManager.from_spec("2g:2,8g:1")
            backend = EventDrivenBackend(arrival="poisson:4.0", seed=11)
            return OnlineSimulator(
                trace, manager=manager, backend=backend
            ).run(FixedPredictor(1500.0))
        a, b = run_once(), run_once()
        assert a.cluster.makespan_hours == b.cluster.makespan_hours
        assert a.cluster.total_queue_wait_hours == (
            b.cluster.total_queue_wait_hours
        )
        assert a.cluster.node_utilization == b.cluster.node_utilization
        assert a.total_wastage_gbh == b.total_wastage_gbh

    def test_different_seeds_change_arrivals(self):
        trace = make_trace([1000.0] * 12, runtimes=[0.5] * 12)
        def run_seed(seed):
            backend = EventDrivenBackend(arrival="poisson:4.0", seed=seed)
            return OnlineSimulator(trace, backend=backend).run(
                FixedPredictor(1500.0)
            )
        a, b = run_seed(1), run_seed(2)
        assert a.cluster.makespan_hours != b.cluster.makespan_hours


class TestPerNodeUtilization:
    def test_divides_by_each_nodes_own_capacity(self):
        # 1024 MB on the 1g node and 2048 MB on the 2g node, both for
        # the whole 1 h makespan: both nodes are 100% utilized.  The old
        # shared denominator (largest node) would report node 0 at 50%.
        trace = make_trace(
            [1000.0, 2000.0], inputs=[1024.0, 2048.0]
        )
        manager = ResourceManager.from_spec("1g:1,2g:1")
        res = OnlineSimulator(trace, manager=manager, backend="event").run(
            InputSizedPredictor()
        )
        assert res.cluster.node_utilization[0] == pytest.approx(1.0)
        assert res.cluster.node_utilization[1] == pytest.approx(1.0)
        assert res.cluster.node_capacity_gb == {0: 1.0, 1: 2.0}
        assert res.cluster.node_busy_memory_gbh[0] == pytest.approx(1.0)
        assert res.cluster.node_busy_memory_gbh[1] == pytest.approx(2.0)


class TestQueueWaitAccounting:
    def test_requeued_wait_after_kill_is_counted(self):
        # One 4096 MB node.  Task 0 (2000 MB alloc, killed at 0.5 h)
        # must wait for task 1 (2000 MB until t=2 h) before its 4000 MB
        # retry fits: the re-dispatch waits 1.5 h, which the old
        # first-start-only accounting silently dropped.
        trace = make_trace(
            [3000.0, 1500.0],
            runtimes=[1.0, 2.0],
            inputs=[2000.0, 2000.0],
        )
        manager = ResourceManager.from_spec("4096m:1")
        res = OnlineSimulator(
            trace, manager=manager, backend="event", time_to_failure=0.5
        ).run(InputSizedPredictor())
        assert res.num_failures == 1
        assert res.cluster.total_queue_wait_hours == pytest.approx(1.5)
        assert res.cluster.max_queue_wait_hours == pytest.approx(1.5)
        # Three dispatches: two first starts (wait 0) + one retry (1.5).
        assert res.cluster.mean_queue_wait_hours == pytest.approx(0.5)
        assert res.cluster.makespan_hours == pytest.approx(3.0)

    def test_unobstructed_retry_waits_zero(self):
        trace = make_trace([3000.0], inputs=[2000.0])
        res = OnlineSimulator(
            trace, backend="event", time_to_failure=0.5
        ).run(InputSizedPredictor())
        assert res.cluster.total_queue_wait_hours == pytest.approx(0.0)


class TestDoublingFactor:
    def test_floor_routes_through_configured_factor(self):
        # A stubborn predictor re-proposes the failed allocation, so the
        # escalation floor drives growth: 1000 -> 3000 -> 9000 with a
        # factor of 3.
        trace = make_trace([8000.0])
        for backend in (
            ReplayBackend(doubling_factor=3.0),
            EventDrivenBackend(doubling_factor=3.0),
        ):
            res = OnlineSimulator(trace, backend=backend).run(
                StubbornPredictor(1000.0)
            )
            (log,) = res.predictions
            assert log.n_attempts == 3
            assert log.final_allocation_mb == pytest.approx(9000.0)

    def test_backends_stay_attempt_identical_for_any_factor(self):
        trace = make_trace([5000.0, 2000.0], inputs=[1200.0, 1200.0])
        logs = {}
        for name, backend in (
            ("replay", ReplayBackend(doubling_factor=2.5)),
            ("event", EventDrivenBackend(doubling_factor=2.5)),
        ):
            res = OnlineSimulator(trace, backend=backend).run(
                StubbornPredictor(1200.0)
            )
            logs[name] = [
                (p.n_attempts, p.final_allocation_mb)
                for p in res.predictions
            ]
        assert logs["replay"] == logs["event"]

    def test_invalid_doubling_factor_rejected(self):
        with pytest.raises(ValueError, match="doubling_factor"):
            ReplayBackend(doubling_factor=1.0)
        with pytest.raises(ValueError, match="doubling_factor"):
            EventDrivenBackend(doubling_factor=0.5)
