"""Tests for the event backend's pluggable arrival models."""

import numpy as np
import pytest

from repro.sim.arrivals import (
    ArrivalModel,
    BurstyArrivals,
    FixedArrivals,
    PoissonArrivals,
    parse_arrival,
)


class TestFixedArrivals:
    def test_batch_default(self):
        times = FixedArrivals().sample(4, np.random.default_rng(0))
        assert times.tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_even_spacing(self):
        times = FixedArrivals(0.25).sample(4, np.random.default_rng(0))
        assert times.tolist() == [0.0, 0.25, 0.5, 0.75]

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError, match="interval_hours"):
            FixedArrivals(-1.0)


class TestPoissonArrivals:
    def test_deterministic_under_fixed_seed(self):
        model = PoissonArrivals(rate_per_hour=2.0)
        a = model.sample(50, np.random.default_rng(7))
        b = model.sample(50, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        model = PoissonArrivals(rate_per_hour=2.0)
        a = model.sample(50, np.random.default_rng(1))
        b = model.sample(50, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_starts_at_zero_and_nondecreasing(self):
        times = PoissonArrivals(0.5).sample(100, np.random.default_rng(3))
        assert times[0] == 0.0
        assert np.all(np.diff(times) >= 0.0)

    def test_mean_gap_tracks_rate(self):
        times = PoissonArrivals(4.0).sample(4000, np.random.default_rng(0))
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(0.25, rel=0.1)

    def test_empty_trace(self):
        assert PoissonArrivals(1.0).sample(0, np.random.default_rng(0)).size == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate_per_hour"):
            PoissonArrivals(0.0)


class TestBurstyArrivals:
    def test_burst_structure(self):
        times = BurstyArrivals(3, 0.5).sample(7, np.random.default_rng(0))
        assert times.tolist() == [0.0, 0.0, 0.0, 0.5, 0.5, 0.5, 1.0]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="burst_size"):
            BurstyArrivals(0, 1.0)
        with pytest.raises(ValueError, match="gap_hours"):
            BurstyArrivals(2, -0.5)


class TestParseArrival:
    def test_fixed_specs(self):
        assert isinstance(parse_arrival("fixed"), FixedArrivals)
        assert parse_arrival("fixed:0.25").interval_hours == 0.25
        assert parse_arrival("batch").interval_hours == 0.0

    def test_poisson_spec(self):
        model = parse_arrival("poisson:0.5")
        assert isinstance(model, PoissonArrivals)
        assert model.rate_per_hour == 0.5

    def test_bursty_spec(self):
        model = parse_arrival("bursty:8x0.5")
        assert isinstance(model, BurstyArrivals)
        assert model.burst_size == 8
        assert model.gap_hours == 0.5

    def test_instance_passes_through(self):
        model = PoissonArrivals(1.0)
        assert parse_arrival(model) is model
        assert isinstance(model, ArrivalModel)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            parse_arrival("fractal:1")
        with pytest.raises(ValueError, match="bad arrival spec"):
            parse_arrival("poisson")
        with pytest.raises(ValueError, match="bad arrival spec"):
            parse_arrival("bursty:8")
        with pytest.raises(TypeError, match="ArrivalModel"):
            parse_arrival(42)
