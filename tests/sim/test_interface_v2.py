"""Predictor API v2: predict_batch equivalence and lifecycle defaults."""

import numpy as np
import pytest

from repro.experiments.factories import method_factories
from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext


def make_submission(i, task_type="t", input_size=100.0, preset=4096.0):
    return TaskSubmission(
        task_type=task_type,
        workflow="wf",
        machine="default",
        instance_id=i,
        input_size_mb=input_size,
        preset_memory_mb=preset,
        timestamp=i,
    )


def make_record(i, task_type="t", input_size=100.0, peak=1000.0, runtime=1.0):
    return TaskRecord(
        task_type=task_type,
        workflow="wf",
        machine="default",
        timestamp=i,
        input_size_mb=input_size,
        peak_memory_mb=peak,
        runtime_hours=runtime,
        success=True,
        attempt=1,
        allocated_mb=peak * 1.5,
        instance_id=i,
    )


def train(predictor, n=12):
    """Feed a deterministic history: two trained types, one unseen."""
    rng = np.random.default_rng(7)
    for i in range(n):
        size_a = 50.0 + 10.0 * i
        predictor.observe(
            make_record(
                2 * i, "a", size_a, peak=200.0 + 3.0 * size_a + rng.normal(0, 5)
            )
        )
        size_b = 500.0 - 20.0 * i
        predictor.observe(
            make_record(
                2 * i + 1, "b", size_b, peak=4000.0 + size_b + rng.normal(0, 25)
            )
        )


def batch_submissions():
    # Interleaved types, including the never-observed "c" (preset path).
    return [
        make_submission(100, "a", 75.0),
        make_submission(101, "b", 330.0),
        make_submission(102, "c", 10.0, preset=2222.0),
        make_submission(103, "a", 140.0),
        make_submission(104, "b", 410.0),
        make_submission(105, "a", 75.0),
    ]


class TestBatchEquivalence:
    @pytest.mark.parametrize("method", sorted(method_factories()))
    def test_batch_equals_loop_of_singles(self, method):
        factory = method_factories()[method]
        # Twin instances trained identically: one answers the batch, the
        # other the loop (predictors may mutate internal state while
        # predicting, so a shared instance would not be a fair check).
        batch_pred, single_pred = factory(), factory()
        train(batch_pred)
        train(single_pred)
        subs = batch_submissions()
        batched = batch_pred.predict_batch(subs)
        singles = np.array([float(single_pred.predict(s)) for s in subs])
        assert batched.shape == (len(subs),)
        np.testing.assert_allclose(batched, singles, rtol=1e-9)

    @pytest.mark.parametrize("method", sorted(method_factories()))
    def test_untrained_batch_falls_back_to_presets(self, method):
        predictor = method_factories()[method]()
        subs = [make_submission(i, "x", 5.0, preset=1234.0) for i in range(3)]
        np.testing.assert_allclose(
            predictor.predict_batch(subs), [1234.0] * 3
        )

    def test_default_implementation_loops_over_predict(self):
        calls = []

        class Tracking(MemoryPredictor):
            name = "Tracking"

            def predict(self, task):
                calls.append(task.instance_id)
                return float(task.instance_id * 10 + 1)

        subs = [make_submission(i) for i in range(4)]
        out = Tracking().predict_batch(subs)
        assert calls == [0, 1, 2, 3]
        np.testing.assert_allclose(out, [1.0, 11.0, 21.0, 31.0])

    def test_sizey_batch_updates_diagnostics_like_singles(self):
        factory = method_factories()["Sizey"]
        batch_pred, single_pred = factory(), factory()
        train(batch_pred)
        train(single_pred)
        subs = batch_submissions()
        batch_pred.predict_batch(subs)
        for s in subs:
            single_pred.predict(s)
        assert batch_pred.selection_counts == single_pred.selection_counts
        assert batch_pred.preset_fallbacks == single_pred.preset_fallbacks
        assert set(batch_pred._pending) == set(single_pred._pending)


class TestLifecycleDefaults:
    def test_hooks_are_noops_by_default(self):
        class Minimal(MemoryPredictor):
            name = "Minimal"

            def predict(self, task):
                return 1.0

        predictor = Minimal()
        predictor.begin_trace(
            TraceContext(workflow="wf", n_tasks=1, time_to_failure=1.0)
        )
        predictor.begin_trace()  # context is optional
        predictor.end_trace()

    def test_trace_context_fields(self):
        ctx = TraceContext(
            workflow="wf", n_tasks=5, time_to_failure=0.5, backend="event"
        )
        assert ctx.backend == "event"
        assert ctx.n_tasks == 5
