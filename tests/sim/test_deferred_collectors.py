"""Deferred collector accumulation (PR 10) = the immediate path, exactly.

The exact-mode ``WastageCollector`` / ``ClusterMetricsCollector`` now
buffer compact rows on the kernel hot path and replay them at
``contribute``.  These tests run the same simulation twice — once
deferred (the default), once with the deferral flag forced off so the
pre-PR-10 immediate bodies run — and require the *entire* result to be
identical: ledger rows, prediction logs, cluster timelines, summary
scalars, and the sketch centroids (which pin the compress boundaries).

The workload mixes successes and kills (under-allocation with retry
escalation) so both row shapes replay, interleaved.
"""

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.kernel.collectors import (
    ClusterMetricsCollector,
    WastageCollector,
)
from repro.sim.results import summary_to_dict
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(n=60):
    """Alternating over/under-allocated tasks: successes and kills."""
    tt = TaskType(name="t", workflow="wf", preset_memory_mb=4096.0)
    insts = [
        TaskInstance(
            task_type=tt,
            instance_id=i,
            input_size_mb=100.0 + i,
            # Every third task's peak exceeds the 200 MB first guess.
            peak_memory_mb=220.0 if i % 3 == 0 else 100.0 + i,
            runtime_hours=0.5 + (i % 5) * 0.1,
        )
        for i in range(n)
    ]
    return WorkflowTrace("wf", insts)


class FixedPredictor(MemoryPredictor):
    name = "Fixed"

    def predict(self, task: TaskSubmission) -> float:
        return 200.0

    def on_failure(self, task, failed_allocation_mb, attempt):
        return 200.0


def run_once(force_immediate: bool):
    backend = EventDrivenBackend(arrival="poisson:4", seed=3)
    manager = ResourceManager(
        MachineConfig(name="m", memory_mb=1024.0), n_nodes=2
    )
    kernel = backend.build_kernel(make_trace(), FixedPredictor(), manager, 1.0)
    wastage = next(
        c for c in kernel.collectors if isinstance(c, WastageCollector)
    )
    cluster = next(
        c for c in kernel.collectors if isinstance(c, ClusterMetricsCollector)
    )
    assert wastage._deferred  # exact mode defers by default
    if force_immediate:
        # Flip the instances back to the pre-PR-10 immediate bodies.
        # ClusterMetrics keys its deferral off ``stream`` (streaming
        # mode needs as-it-happens O(1) updates), so stream=True runs
        # the immediate scalar updates; on_run_start re-derives the
        # mode-dependent containers from the flag.
        wastage._deferred = False
        cluster.stream = True
    result = kernel.run()
    assert result is not None
    return result, wastage, cluster


def sketch_state(sketch):
    sketch._compress()
    return (sketch._means, sketch._weights, sketch.stat.__getstate__())


def test_wastage_deferred_equals_immediate():
    deferred, wc_d, _ = run_once(force_immediate=False)
    immediate, wc_i, _ = run_once(force_immediate=True)
    assert deferred.ledger.outcomes == immediate.ledger.outcomes
    assert deferred.predictions == immediate.predictions
    assert wc_d._n_tasks == wc_i._n_tasks
    assert wc_d._first_ratio_sum == wc_i._first_ratio_sum
    assert wc_d._first_ratio_n == wc_i._first_ratio_n
    assert sketch_state(wc_d._wastage_sketch) == sketch_state(
        wc_i._wastage_sketch
    )
    assert sketch_state(wc_d._turnaround_sketch) == sketch_state(
        wc_i._turnaround_sketch
    )
    # Kills happened, so both row shapes were replayed.
    assert deferred.ledger.num_failures > 0


def test_cluster_metrics_deferred_equals_streaming_scalars():
    """Deferred exact mode reports the same online scalars as streaming.

    The streaming path runs the immediate updates; the deferred exact
    path replays them at contribute.  Wait stats, sketch centroids, and
    busy-memory integrals must agree bit-for-bit (the exact run's
    timelines/queue-waits have no streaming counterpart to compare).
    """
    _, _, cm_d = run_once(force_immediate=False)
    _, _, cm_i = run_once(force_immediate=True)
    assert cm_d._wait_stat.__getstate__() == cm_i._wait_stat.__getstate__()
    assert sketch_state(cm_d._wait_sketch) == sketch_state(cm_i._wait_sketch)
    assert cm_d._busy_mbh == cm_i._busy_mbh
    assert cm_d._makespan == cm_i._makespan


def test_deferred_run_summary_matches_streaming_summary():
    # End-to-end cross-check through the public result schema: an exact
    # (deferred) run and a streaming run must report identical
    # summaries, as BENCH/stream-collectors docs promise.
    def run(stream):
        backend = EventDrivenBackend(
            arrival="poisson:4", seed=3, stream_collectors=stream
        )
        manager = ResourceManager(
            MachineConfig(name="m", memory_mb=1024.0), n_nodes=2
        )
        return backend.run(make_trace(), FixedPredictor(), manager, 1.0)

    exact = summary_to_dict(run(False).summary)
    streaming = summary_to_dict(run(True).summary)
    assert exact == streaming


def test_pending_rows_survive_pickle():
    # Checkpointing mid-run pickles collectors with pending rows; the
    # restored collector must flush to the same totals.
    import pickle

    backend = EventDrivenBackend(arrival="poisson:4", seed=3)
    manager = ResourceManager(
        MachineConfig(name="m", memory_mb=1024.0), n_nodes=2
    )
    kernel = backend.build_kernel(make_trace(), FixedPredictor(), manager, 1.0)
    wastage = next(
        c for c in kernel.collectors if isinstance(c, WastageCollector)
    )
    kernel.run(until=2.0)  # pause mid-stream with rows pending
    assert wastage._pending
    clone = pickle.loads(pickle.dumps(wastage))
    assert len(clone._pending) == len(wastage._pending)
    wastage._flush_pending()
    clone._flush_pending()
    assert clone.ledger.outcomes == wastage.ledger.outcomes
