"""Tests for the columnar two-lane :class:`EventCalendar` (PR 10).

The calendar's contract is that its merged pop stream is *identical* to
pushing every event through one :class:`EventHeap` — same ``(time,
kind, seq)`` total order, ties included.  The randomized model test
drives both structures through the same operation sequence and compares
every popped event; the rest pins the grow-by-doubling boundary,
checkpoint/resume mid-wave, wave extraction, and the batch-validation
errors that guard the scheduled lane's sortedness invariant.
"""

import pickle
import random

import numpy as np
import pytest

from repro.sim.kernel.events import (
    ARRIVAL,
    COMPLETION,
    OUTAGE_END,
    OUTAGE_START,
    EventCalendar,
    EventHeap,
)

KINDS = (COMPLETION, OUTAGE_END, ARRIVAL, OUTAGE_START)


def drain(calendar):
    out = []
    while calendar:
        out.append(calendar.pop())
    return out


class TestRandomizedHeapEquivalence:
    def test_10k_events_match_heap_reference(self):
        """Same op sequence on calendar and EventHeap → same pop order.

        Times are drawn from a tiny grid so ties (same time, same kind
        and cross-kind) are dense; payloads are unique ints, so any
        ordering divergence — including within a tie group — shows up
        as a payload mismatch.
        """
        rng = random.Random(42)
        calendar = EventCalendar()
        heap = EventHeap()
        payload = 0
        # Load phase: scheduled batches (non-decreasing ARRIVAL times)
        # interleaved with dynamic pushes of every kind, mirrored as
        # plain pushes on the reference heap in the same order.
        last = 0.0
        for _ in range(110):
            if rng.random() < 0.5:
                m = rng.randrange(0, 200)
                times = sorted(
                    last + rng.choice([0.0, 0.25, 0.5]) for _ in range(m)
                )
                payloads = list(range(payload, payload + m))
                payload += m
                calendar.schedule_batch(times, ARRIVAL, payloads)
                for t, p in zip(times, payloads):
                    heap.push(t, ARRIVAL, p)
                if times:
                    last = times[-1]
            else:
                for _ in range(rng.randrange(0, 200)):
                    t = rng.choice([0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0])
                    k = rng.choice(KINDS)
                    calendar.push(t, k, payload)
                    heap.push(t, k, payload)
                    payload += 1
        assert payload >= 10_000
        # Consume phase: pop both, occasionally pushing more dynamic
        # events mid-drain (legal — only schedule_batch is load-only).
        popped = 0
        while calendar:
            got = calendar.pop()
            want = heap.pop()
            assert got == want
            popped += 1
            if popped % 97 == 0:
                t = got[0] + rng.choice([0.0, 0.1, 1.0])
                k = rng.choice(KINDS)
                calendar.push(t, k, payload)
                heap.push(t, k, payload)
                payload += 1
        assert len(heap) == 0
        assert popped >= 10_000

    def test_cross_lane_ties_decided_by_kind_and_seq(self):
        # A completion pushed *after* arrivals were scheduled at the
        # same instant still pops first (kind 0 < kind 2); dynamic
        # arrivals at the same instant pop after scheduled ones (their
        # seq is larger, assigned later).
        calendar = EventCalendar()
        calendar.schedule_batch([1.0, 1.0], ARRIVAL, ["s0", "s1"])
        calendar.push(1.0, ARRIVAL, "d0")
        calendar.push(1.0, COMPLETION, "c0")
        assert drain(calendar) == [
            (1.0, COMPLETION, "c0"),
            (1.0, ARRIVAL, "s0"),
            (1.0, ARRIVAL, "s1"),
            (1.0, ARRIVAL, "d0"),
        ]


class TestScheduledLane:
    def test_grow_by_doubling_boundary(self):
        calendar = EventCalendar(capacity=4)
        # Three batches straddling the 4 → 8 → 16 → 32 growth points.
        calendar.schedule_batch([0.0, 1.0, 2.0], ARRIVAL, [0, 1, 2])
        calendar.schedule_batch([2.0, 3.0], ARRIVAL, [3, 4])
        calendar.schedule_batch(
            [float(i) for i in range(3, 30)], ARRIVAL, list(range(5, 32))
        )
        assert calendar._stimes.shape[0] == 32
        assert len(calendar) == 32
        assert [p for _, _, p in drain(calendar)] == list(range(32))

    def test_empty_batch_is_noop(self):
        calendar = EventCalendar()
        calendar.schedule_batch([], ARRIVAL)
        assert not calendar
        assert len(calendar) == 0

    def test_unsorted_batch_rejected(self):
        calendar = EventCalendar()
        with pytest.raises(ValueError, match="non-decreasing"):
            calendar.schedule_batch([1.0, 0.5], ARRIVAL)

    def test_batch_before_scheduled_tail_rejected(self):
        calendar = EventCalendar()
        calendar.schedule_batch([5.0], ARRIVAL)
        with pytest.raises(ValueError, match="before the last scheduled"):
            calendar.schedule_batch([4.0], ARRIVAL)

    def test_payload_length_mismatch_rejected(self):
        calendar = EventCalendar()
        with pytest.raises(ValueError, match="length"):
            calendar.schedule_batch([1.0, 2.0], ARRIVAL, ["only-one"])

    def test_non_1d_times_rejected(self):
        calendar = EventCalendar()
        with pytest.raises(ValueError, match="one-dimensional"):
            calendar.schedule_batch(np.zeros((2, 2)), ARRIVAL)

    def test_none_payload_mode_upgrades_lazily(self):
        # First batch payload-free (None mode), second carries payloads:
        # the first batch's events must still pop with payload None.
        calendar = EventCalendar()
        calendar.schedule_batch([0.0, 1.0], ARRIVAL)
        calendar.schedule_batch([2.0, 3.0], ARRIVAL, ["a", "b"])
        calendar.schedule_batch([4.0], ARRIVAL)
        assert [p for _, _, p in drain(calendar)] == [None, None, "a", "b", None]

    def test_next_time_merges_lanes(self):
        calendar = EventCalendar()
        calendar.schedule_batch([2.0], ARRIVAL)
        assert calendar.next_time == 2.0
        calendar.push(1.0, COMPLETION, None)
        assert calendar.next_time == 1.0
        calendar.pop()
        assert calendar.next_time == 2.0


class TestWaves:
    def test_pop_wave_groups_same_timestamp(self):
        calendar = EventCalendar()
        calendar.schedule_batch([1.0, 1.0, 2.0], ARRIVAL, ["a", "b", "c"])
        calendar.push(1.0, COMPLETION, "done")
        now, wave = calendar.pop_wave()
        assert now == 1.0
        assert wave == [(COMPLETION, "done"), (ARRIVAL, "a"), (ARRIVAL, "b")]
        now, wave = calendar.pop_wave()
        assert (now, wave) == (2.0, [(ARRIVAL, "c")])
        assert not calendar


class TestCheckpointResume:
    def test_pickle_mid_wave_resumes_bit_for_bit(self):
        """Pickle partway through a same-time group; order continues."""
        reference = EventCalendar()
        calendar = EventCalendar()
        for c in (reference, calendar):
            c.schedule_batch(
                [0.0, 1.0, 1.0, 1.0, 2.0], ARRIVAL, list(range(5))
            )
            c.push(1.0, COMPLETION, "mid")
            c.push(3.0, OUTAGE_START, "later")
        want = drain(reference)
        got = [calendar.pop() for _ in range(3)]  # stops inside t=1.0
        resumed = pickle.loads(pickle.dumps(calendar))
        assert len(resumed) == len(calendar)
        got += drain(resumed)
        assert got == want

    def test_pickle_keeps_only_unconsumed_tail(self):
        calendar = EventCalendar()
        calendar.schedule_batch(
            [float(i) for i in range(100)], ARRIVAL, list(range(100))
        )
        for _ in range(90):
            calendar.pop()
        resumed = pickle.loads(pickle.dumps(calendar))
        assert resumed._n_scheduled == 10
        assert resumed._cursor == 0
        assert [p for _, _, p in drain(resumed)] == list(range(90, 100))

    def test_pickle_preserves_seq_counter_for_new_pushes(self):
        # Post-resume dynamic pushes must sort after pre-checkpoint
        # events at the same (time, kind) — the seq counter survives.
        calendar = EventCalendar()
        calendar.schedule_batch([1.0], ARRIVAL, ["scheduled"])
        resumed = pickle.loads(pickle.dumps(calendar))
        resumed.push(1.0, ARRIVAL, "dynamic")
        assert [p for _, _, p in drain(resumed)] == ["scheduled", "dynamic"]
