"""Tests for the online replay simulator."""

import numpy as np
import pytest

from repro.provenance.records import TaskRecord
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.results import aggregate_results
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(peaks, runtimes=None, workflow="wf", preset=4096.0):
    tt = TaskType(name="t", workflow=workflow, preset_memory_mb=preset)
    runtimes = runtimes or [1.0] * len(peaks)
    insts = [
        TaskInstance(
            task_type=tt,
            instance_id=i,
            input_size_mb=100.0,
            peak_memory_mb=p,
            runtime_hours=r,
        )
        for i, (p, r) in enumerate(zip(peaks, runtimes))
    ]
    return WorkflowTrace(workflow, insts)


class FixedPredictor(MemoryPredictor):
    """Allocates a fixed amount; doubles on failure; records observations."""

    name = "Fixed"

    def __init__(self, allocation_mb: float):
        self.allocation_mb = allocation_mb
        self.seen: list[TaskRecord] = []

    def predict(self, task: TaskSubmission) -> float:
        return self.allocation_mb

    def observe(self, record: TaskRecord) -> None:
        self.seen.append(record)


class TestSuccessPath:
    def test_no_failures_when_allocation_covers(self):
        trace = make_trace([1000.0, 1500.0])
        res = OnlineSimulator(trace).run(FixedPredictor(2048.0))
        assert res.num_failures == 0
        assert res.num_tasks == 2
        # wastage: (2048-1000)/1024*1 + (2048-1500)/1024*1
        assert res.total_wastage_gbh == pytest.approx(
            (2048 - 1000) / 1024 + (2048 - 1500) / 1024
        )

    def test_observe_called_with_truth(self):
        trace = make_trace([1000.0])
        pred = FixedPredictor(2048.0)
        OnlineSimulator(trace).run(pred)
        assert len(pred.seen) == 1
        rec = pred.seen[0]
        assert rec.success and rec.peak_memory_mb == 1000.0
        assert rec.allocated_mb == 2048.0

    def test_runtime_accounted(self):
        trace = make_trace([100.0, 100.0], runtimes=[0.5, 2.0])
        res = OnlineSimulator(trace).run(FixedPredictor(1024.0))
        assert res.total_runtime_hours == pytest.approx(2.5)


class TestFailurePath:
    def test_failure_then_doubling_succeeds(self):
        trace = make_trace([3000.0])
        pred = FixedPredictor(1000.0)
        res = OnlineSimulator(trace).run(pred)
        assert res.num_failures == 2  # 1000 -> 2000 -> 4000 ok
        assert res.predictions[0].n_attempts == 3
        assert res.predictions[0].final_allocation_mb == pytest.approx(4000.0)

    def test_failure_records_marked(self):
        trace = make_trace([3000.0])
        pred = FixedPredictor(2000.0)
        OnlineSimulator(trace).run(pred)
        fail_recs = [r for r in pred.seen if not r.success]
        assert len(fail_recs) == 1
        # A failure record's "peak" is the exceeded allocation.
        assert fail_recs[0].peak_memory_mb == 2000.0

    def test_ttf_halves_failure_cost(self):
        trace = make_trace([3000.0], runtimes=[1.0])
        full = OnlineSimulator(trace, time_to_failure=1.0).run(FixedPredictor(2000.0))
        half = OnlineSimulator(trace, time_to_failure=0.5).run(FixedPredictor(2000.0))
        # Failed attempt: 2000 MB for ttf*1h; success: (4000-3000)*1h.
        assert full.total_wastage_gbh == pytest.approx(2000 / 1024 + 1000 / 1024)
        assert half.total_wastage_gbh == pytest.approx(1000 / 1024 + 1000 / 1024)
        assert half.total_runtime_hours < full.total_runtime_hours

    def test_presets_unaffected_by_ttf(self):
        # The paper notes preset wastage is identical across ttf values
        # (no failures ever happen).
        trace = make_trace([1000.0, 2000.0])
        a = OnlineSimulator(trace, time_to_failure=1.0).run(FixedPredictor(4096.0))
        b = OnlineSimulator(trace, time_to_failure=0.5).run(FixedPredictor(4096.0))
        assert a.total_wastage_gbh == pytest.approx(b.total_wastage_gbh)

    def test_retry_allocations_strictly_grow(self):
        class StubbornPredictor(FixedPredictor):
            # Tries to shrink the allocation after failure; the engine
            # must fall back to doubling to guarantee progress.
            def on_failure(self, task, failed_allocation_mb, attempt):
                return failed_allocation_mb * 0.5

        trace = make_trace([3000.0])
        res = OnlineSimulator(trace).run(StubbornPredictor(1000.0))
        assert res.predictions[0].n_attempts == 3  # 1000 -> 2000 -> 4000
        assert res.predictions[0].final_allocation_mb == pytest.approx(4000.0)

    def test_invalid_ttf_rejected(self):
        with pytest.raises(ValueError, match="time_to_failure"):
            OnlineSimulator(make_trace([1.0]), time_to_failure=1.5)


class TestLogsAndAggregation:
    def test_prediction_log_fields(self):
        trace = make_trace([3000.0])
        res = OnlineSimulator(trace).run(FixedPredictor(2000.0))
        log = res.predictions[0]
        assert log.first_allocation_mb == 2000.0
        assert log.true_peak_mb == 3000.0
        assert log.failed_attempts == 1
        assert log.first_attempt_over_mb == -1000.0

    def test_failure_distribution_includes_zero_types(self):
        tt_ok = TaskType(name="ok", workflow="wf", preset_memory_mb=4096.0)
        tt_bad = TaskType(name="bad", workflow="wf", preset_memory_mb=4096.0)
        insts = [
            TaskInstance(task_type=tt_ok, instance_id=0, input_size_mb=1.0,
                         peak_memory_mb=100.0, runtime_hours=0.1),
            TaskInstance(task_type=tt_bad, instance_id=1, input_size_mb=1.0,
                         peak_memory_mb=3000.0, runtime_hours=0.1),
        ]
        res = OnlineSimulator(WorkflowTrace("wf", insts)).run(FixedPredictor(2000.0))
        dist = res.failure_distribution()
        assert sorted(dist.tolist()) == [0, 1]

    def test_aggregate_results(self):
        r1 = OnlineSimulator(make_trace([1000.0], workflow="a")).run(
            FixedPredictor(2048.0)
        )
        r2 = OnlineSimulator(make_trace([3000.0], workflow="b")).run(
            FixedPredictor(2048.0)
        )
        agg = aggregate_results([r1, r2])
        assert agg["num_tasks"] == 2
        assert agg["num_failures"] == r2.num_failures
        assert set(agg["per_workflow_wastage"]) == {"a", "b"}
        assert agg["total_wastage_gbh"] == pytest.approx(
            r1.total_wastage_gbh + r2.total_wastage_gbh
        )

    def test_aggregate_rejects_mixed_methods(self):
        r1 = OnlineSimulator(make_trace([100.0], workflow="a")).run(
            FixedPredictor(1024.0)
        )
        r2 = OnlineSimulator(make_trace([100.0], workflow="b")).run(
            FixedPredictor(1024.0)
        )
        object.__setattr__
        r2.method = "Other"
        with pytest.raises(ValueError, match="methods"):
            aggregate_results([r1, r2])

    def test_aggregate_empty(self):
        with pytest.raises(ValueError, match="no results"):
            aggregate_results([])

    def test_over_allocation_ratio(self):
        res = OnlineSimulator(make_trace([1024.0])).run(FixedPredictor(2048.0))
        assert res.over_allocation_ratio() == pytest.approx(2.0)
