"""Node drain/outage scenario: parsing, pausing, preemption, both modes."""

import pytest

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.kernel.outage import (
    NodeOutage,
    parse_node_outage,
    parse_node_outages,
)
from repro.sim.results import result_to_dict
from repro.workflow.dag import WorkflowDAG

from tests.sim.test_kernel import FixedPredictor, make_trace


class TestParsing:
    def test_spec_round_trip(self):
        outage = parse_node_outage("0.5:2:3")
        assert outage == NodeOutage(0.5, 2.0, 3)
        assert outage.end_hours == 2.5
        assert parse_node_outage(outage.spec) == outage

    @pytest.mark.parametrize(
        "bad",
        ["", "1:2", "1:2:3:4", "x:1:0", "1:x:0", "1:1:x",
         "-1:1:0", "1:0:0", "1:-2:0", "1:1:-1"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_node_outage(bad)

    def test_normalizer_accepts_singletons_lists_and_none(self):
        assert parse_node_outages(None) == ()
        assert parse_node_outages("1:1:0") == (NodeOutage(1.0, 1.0, 0),)
        assert parse_node_outages(
            ["1:1:0", NodeOutage(2.0, 1.0, 1)]
        ) == (NodeOutage(1.0, 1.0, 0), NodeOutage(2.0, 1.0, 1))

    def test_unknown_node_rejected_at_run_time(self):
        trace = make_trace([("a", 100.0, 1.0)])
        manager = ResourceManager(
            MachineConfig(name="tiny", memory_mb=512.0), n_nodes=2
        )
        backend = EventDrivenBackend(node_outage="0:1:9")
        with pytest.raises(ValueError, match="unknown node 9"):
            backend.run(trace, FixedPredictor(200.0), manager, 1.0)


def one_node_manager(memory_mb=512.0, n_nodes=1):
    return ResourceManager(
        MachineConfig(name="tiny", memory_mb=memory_mb), n_nodes=n_nodes
    )


class TestDrainSemantics:
    def test_drain_pauses_placement_until_window_ends(self):
        # The only node is down for [0, 2); the batch-submitted task can
        # only start once the drain lifts.
        trace = make_trace([("a", 100.0, 1.0)])
        backend = EventDrivenBackend(node_outage="0:2:0")
        res = backend.run(
            trace, FixedPredictor(200.0), one_node_manager(), 1.0
        )
        assert res.num_failures == 0
        assert res.cluster.total_queue_wait_hours == pytest.approx(2.0)
        assert res.cluster.makespan_hours == pytest.approx(3.0)

    def test_running_task_is_preempted_and_requeued(self):
        # The task starts at t=0 and runs 2 h; the node drains at t=1
        # for 1 h.  The attempt is preempted (no ledger failure), and
        # the full runtime replays after the node returns: 1 h of lost
        # work + 1 h drain + 2 h clean run.
        trace = make_trace([("a", 100.0, 2.0)])
        backend = EventDrivenBackend(node_outage="1:1:0")
        res = backend.run(
            trace, FixedPredictor(200.0), one_node_manager(), 1.0
        )
        assert res.num_failures == 0  # preemption is not a sizing fault
        assert [o.success for o in res.ledger.outcomes] == [True]
        assert res.predictions[0].n_attempts == 1  # budget untouched
        assert res.cluster.makespan_hours == pytest.approx(4.0)
        # The pre-drain hour still counts as occupied memory.
        assert res.cluster.node_busy_memory_gbh[0] == pytest.approx(
            200.0 / 1024.0 * (1.0 + 2.0)
        )

    def test_drain_only_affects_named_node(self):
        # Two nodes, node 0 drained the whole run: all work must land on
        # node 1.
        trace = make_trace([("a", 100.0, 1.0), ("a", 100.0, 1.0)])
        backend = EventDrivenBackend(node_outage="0:10:0")
        res = backend.run(
            trace, FixedPredictor(200.0), one_node_manager(n_nodes=2), 1.0
        )
        assert res.cluster.node_busy_memory_gbh[0] == 0.0
        assert res.cluster.node_busy_memory_gbh[1] > 0.0

    def test_overlapping_drains_on_one_node(self):
        # Two windows [0,2) and [1,3) overlap; the node is only usable
        # from t=3.
        trace = make_trace([("a", 100.0, 1.0)])
        backend = EventDrivenBackend(node_outage=["0:2:0", "1:2:0"])
        res = backend.run(
            trace, FixedPredictor(200.0), one_node_manager(), 1.0
        )
        assert res.cluster.total_queue_wait_hours == pytest.approx(3.0)

    def test_preempted_task_killed_later_still_charges_ledger(self):
        # Under-allocated task: preempted once, then killed on the
        # retry of the same attempt, then succeeds after escalation —
        # the ledger sees exactly one failure.
        trace = make_trace([("a", 300.0, 1.0)])
        backend = EventDrivenBackend(node_outage="0.5:0.5:0")
        res = backend.run(
            trace, FixedPredictor(200.0), one_node_manager(), 1.0
        )
        assert res.num_failures == 1
        assert [o.success for o in res.ledger.outcomes] == [False, True]


class TestBothModes:
    def _trace(self):
        dag = WorkflowDAG(["a", "b"], [("a", "b")])
        return make_trace(
            [("a", 300.0, 1.0), ("a", 120.0, 0.4), ("b", 450.0, 0.5),
             ("b", 80.0, 0.2)],
            dag=dag,
        )

    def test_outage_works_in_dag_mode_and_attribution_balances(self):
        trace = self._trace()
        backend = EventDrivenBackend(
            dag="trace", workflow_arrival="2@fixed:0.1",
            node_outage="0.3:0.5:0", seed=1,
        )
        res = backend.run(
            trace, FixedPredictor(256.0), one_node_manager(n_nodes=2), 0.8
        )
        assert res.workflows is not None
        # Preemptions charge nothing, so per-workflow wastage still sums
        # to the ledger exactly.
        total = sum(w.wastage_gbh for w in res.workflows.instances)
        assert total == pytest.approx(res.total_wastage_gbh)

    def test_outage_deterministic_in_both_modes(self):
        trace = self._trace()
        for kwargs in (
            dict(arrival="poisson:3", seed=5, node_outage="0.2:0.4:1"),
            dict(dag="trace", workflow_arrival="2@poisson:4", seed=5,
                 node_outage="0.2:0.4:1"),
        ):
            runs = [
                result_to_dict(
                    EventDrivenBackend(**kwargs).run(
                        trace,
                        FixedPredictor(256.0),
                        one_node_manager(n_nodes=2),
                        0.8,
                    )
                )
                for _ in range(2)
            ]
            assert runs[0] == runs[1]

    def test_online_simulator_threads_node_outage(self):
        trace = make_trace([("a", 100.0, 1.0)])
        sim = OnlineSimulator(
            trace, manager=one_node_manager(), backend="event",
            node_outage="0:2:0",
        )
        res = sim.run(FixedPredictor(200.0))
        assert res.cluster.makespan_hours == pytest.approx(3.0)

    def test_replay_backend_rejects_node_outage(self):
        trace = make_trace([("a", 100.0, 1.0)])
        with pytest.raises(ValueError, match="kernel-driven"):
            OnlineSimulator(trace, backend="replay", node_outage="0:1:0")
