"""Tests for regression metrics, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    pinball_loss,
    r2_score,
    relative_error,
    root_mean_squared_error,
    under_prediction_rate,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.lists(finite_floats, min_size=1, max_size=50)


class TestPointValues:
    def test_mae_known_value(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_mse_known_value(self):
        assert mean_squared_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(2.5)

    def test_rmse_is_sqrt_mse(self):
        y, p = [1.0, 5.0, -2.0], [0.0, 7.0, 1.0]
        assert root_mean_squared_error(y, p) == pytest.approx(
            np.sqrt(mean_squared_error(y, p))
        )

    def test_mape_known_value(self):
        assert mean_absolute_percentage_error([2.0, 4.0], [1.0, 5.0]) == pytest.approx(
            (0.5 + 0.25) / 2
        )

    def test_median_ae_robust_to_one_outlier(self):
        y = [1.0, 1.0, 1.0, 1.0, 1.0]
        p = [1.1, 0.9, 1.0, 1.1, 100.0]
        assert median_absolute_error(y, p) == pytest.approx(0.1)

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_r2_mean_predictor_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r2_constant_target_conventions(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_pinball_median_is_half_mae(self):
        y = [1.0, 4.0, 2.0]
        p = [2.0, 1.0, 2.0]
        assert pinball_loss(y, p, 0.5) == pytest.approx(
            0.5 * mean_absolute_error(y, p)
        )

    def test_pinball_asymmetry(self):
        # Underprediction (y > p) is penalised by q, overprediction by 1-q.
        assert pinball_loss([1.0], [0.0], 0.9) == pytest.approx(0.9)
        assert pinball_loss([0.0], [1.0], 0.9) == pytest.approx(0.1)

    def test_relative_error_fig12_semantics(self):
        out = relative_error([10.0, 20.0], [11.0, 15.0])
        assert out == pytest.approx([0.1, 0.25])

    def test_relative_error_rejects_nonpositive_targets(self):
        with pytest.raises(ValueError, match="strictly positive"):
            relative_error([0.0], [1.0])

    def test_under_prediction_rate(self):
        assert under_prediction_rate([2.0, 2.0, 2.0, 2.0], [1.0, 3.0, 2.0, 0.0]) == 0.5


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mean_absolute_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            mean_squared_error([], [])

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_pinball_quantile_domain(self, q):
        with pytest.raises(ValueError, match="quantile"):
            pinball_loss([1.0], [1.0], q)


class TestProperties:
    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_zero_error_on_identical_inputs(self, v):
        assert mean_absolute_error(v, v) == 0.0
        assert mean_squared_error(v, v) == 0.0
        assert median_absolute_error(v, v) == 0.0

    @given(vectors, vectors)
    @settings(max_examples=50, deadline=None)
    def test_metrics_nonnegative(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert mean_absolute_error(a, b) >= 0.0
        assert mean_squared_error(a, b) >= 0.0
        assert pinball_loss(a, b, 0.3) >= 0.0

    @given(vectors, vectors)
    @settings(max_examples=50, deadline=None)
    def test_mae_symmetric(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert mean_absolute_error(a, b) == pytest.approx(
            mean_absolute_error(b, a)
        )

    @given(vectors, finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_mae_shift_invariance(self, v, c):
        shifted_true = [x + c for x in v]
        shifted_pred = [x + c for x in v]
        assert mean_absolute_error(shifted_true, shifted_pred) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_r2_upper_bound(self, v):
        rng = np.random.default_rng(0)
        noisy = np.asarray(v) + rng.normal(0, 0.1, len(v))
        assert r2_score(v, noisy) <= 1.0 + 1e-12

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=30),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_pinball_zero_iff_exact(self, v, q):
        assert pinball_loss(v, v, q) == 0.0
