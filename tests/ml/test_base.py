"""Tests for the estimator contract (params, clone, validation)."""

import numpy as np
import pytest

from repro.ml.base import (
    BaseEstimator,
    NotFittedError,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    clone,
)
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.tree import DecisionTreeRegressor


class Toy(BaseEstimator):
    def __init__(self, a: int = 1, b: str = "x") -> None:
        self.a = a
        self.b = b

    def fit(self, X, y):
        self.fitted_ = True
        return self


class TestGetSetParams:
    def test_get_params_returns_constructor_args(self):
        assert Toy(a=3, b="y").get_params() == {"a": 3, "b": "y"}

    def test_set_params_roundtrip(self):
        t = Toy().set_params(a=9)
        assert t.a == 9 and t.b == "x"

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            Toy().set_params(c=1)

    def test_param_names_sorted_and_stable(self):
        assert Toy._get_param_names() == ["a", "b"]


class TestClone:
    def test_clone_copies_params_not_state(self):
        t = Toy(a=5).fit(None, None)
        c = clone(t)
        assert c.a == 5
        assert not hasattr(c, "fitted_")

    def test_clone_with_overrides(self):
        c = clone(Toy(a=5), overrides={"a": 7})
        assert c.a == 7

    def test_clone_rejects_unknown_override(self):
        with pytest.raises(ValueError, match="Unknown override"):
            clone(Toy(), overrides={"zzz": 1})

    def test_clone_real_estimator(self):
        m = RidgeRegression(alpha=0.5)
        m.fit([[1.0], [2.0], [3.0]], [1.0, 2.0, 3.0])
        c = clone(m)
        assert c.alpha == 0.5
        with pytest.raises(NotFittedError):
            c.predict([[1.0]])


class TestCheckArray:
    def test_rejects_1d_when_2d_required(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[1.0], [np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.inf]])

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.empty((0, 2)))

    def test_allow_empty(self):
        out = check_array(np.empty((0, 2)), allow_empty=True)
        assert out.shape == (0, 2)

    def test_returns_contiguous_float64(self):
        a = np.asfortranarray(np.arange(6, dtype=np.int32).reshape(2, 3))
        out = check_array(a)
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]


class TestCheckXy:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent lengths"):
            check_X_y([[1.0], [2.0]], [1.0])

    def test_flattens_column_y(self):
        X, y = check_X_y([[1.0], [2.0]], np.array([[1.0], [2.0]]))
        assert y.shape == (2,)

    def test_rejects_nan_target(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X_y([[1.0]], [np.nan])


class TestCheckIsFitted:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            check_is_fitted(Toy())

    def test_fitted_passes(self):
        check_is_fitted(Toy().fit(None, None))

    def test_explicit_attributes(self):
        t = Toy().fit(None, None)
        check_is_fitted(t, ["fitted_"])
        with pytest.raises(NotFittedError):
            check_is_fitted(t, ["coef_"])

    def test_predict_before_fit_raises_for_every_regressor(self):
        from repro.ml import (
            KNeighborsRegressor,
            MLPRegressor,
            RandomForestRegressor,
        )

        for est in (
            LinearRegression(),
            KNeighborsRegressor(),
            DecisionTreeRegressor(),
            RandomForestRegressor(n_estimators=2),
            MLPRegressor(),
        ):
            with pytest.raises(NotFittedError):
                est.predict([[1.0]])


class TestCheckRandomState:
    def test_int_seed_reproducible(self):
        a = check_random_state(42).random(3)
        b = check_random_state(42).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert check_random_state(g) is g
