"""Tests for the MLP regressor."""

import numpy as np
import pytest

from repro.ml.mlp import MLPRegressor
from repro.ml.preprocessing import StandardScaler


def make_quadratic(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 1))
    y = 2.0 * x[:, 0] ** 2 + 0.5
    return x, y


class TestMLPRegressor:
    def test_learns_linear_map(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(150, 2))
        y = 0.7 * X[:, 0] - 0.3 * X[:, 1]
        m = MLPRegressor(hidden_layer_sizes=(16,), max_iter=400, random_state=0)
        m.fit(X, y)
        assert m.score(X, y) > 0.98

    def test_learns_quadratic_the_papers_motivating_case(self):
        # §II-B: "memory usage that grows as the square of the amount of
        # input data" is why the MLP is in the pool.
        X, y = make_quadratic()
        m = MLPRegressor(hidden_layer_sizes=(32, 16), max_iter=600, random_state=1)
        m.fit(X, y)
        assert m.score(X, y) > 0.95

    def test_loss_curve_decreases_overall(self):
        X, y = make_quadratic(n=100)
        m = MLPRegressor(hidden_layer_sizes=(8,), max_iter=100, random_state=2).fit(X, y)
        assert m.loss_curve_[-1] < m.loss_curve_[0]

    def test_early_stopping_respects_max_iter(self):
        X, y = make_quadratic(n=50)
        m = MLPRegressor(max_iter=30, random_state=0).fit(X, y)
        assert m.n_iter_ <= 30

    def test_partial_fit_improves_on_new_data(self):
        X, y = make_quadratic(n=100)
        m = MLPRegressor(hidden_layer_sizes=(16,), max_iter=150, random_state=0).fit(
            X[:50], y[:50]
        )
        before = float(np.mean((m.predict(X[50:]) - y[50:]) ** 2))
        for _ in range(10):
            m.partial_fit(X[50:], y[50:])
        after = float(np.mean((m.predict(X[50:]) - y[50:]) ** 2))
        assert after <= before

    def test_partial_fit_initialises_when_unfitted(self):
        m = MLPRegressor(hidden_layer_sizes=(4,), random_state=0)
        m.partial_fit([[0.5]], [1.0])
        assert np.isfinite(m.predict([[0.5]]))[0]

    def test_partial_fit_dimension_guard(self):
        m = MLPRegressor(random_state=0)
        m.partial_fit([[1.0, 2.0]], [1.0])
        with pytest.raises(ValueError, match="dimension"):
            m.partial_fit([[1.0]], [1.0])

    def test_deterministic_given_seed(self):
        X, y = make_quadratic(n=80)
        a = MLPRegressor(max_iter=50, random_state=7).fit(X, y).predict(X)
        b = MLPRegressor(max_iter=50, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_activations_all_work(self):
        X, y = make_quadratic(n=60)
        for act in ("relu", "tanh", "logistic", "identity"):
            m = MLPRegressor(
                hidden_layer_sizes=(8,), activation=act, max_iter=50, random_state=0
            ).fit(X, y)
            assert np.isfinite(m.predict(X)).all()

    def test_invalid_activation(self):
        with pytest.raises(ValueError, match="activation"):
            MLPRegressor(activation="swish").fit([[1.0], [2.0]], [1.0, 2.0])

    def test_deep_network_shapes(self):
        X, y = make_quadratic(n=60)
        m = MLPRegressor(hidden_layer_sizes=(8, 4, 2), max_iter=20, random_state=0)
        m.fit(X, y)
        shapes = [w.shape for w in m.coefs_]
        assert shapes == [(1, 8), (8, 4), (4, 2), (2, 1)]

    def test_scaled_inputs_improve_fit_on_wide_range(self):
        # MLPs need scaling for wide-range inputs (e.g. bytes); the pool
        # wraps them in a scaler — verify the combination works.
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1e9, size=(150, 1))
        y = X[:, 0] / 1e9 * 5.0
        Xs = StandardScaler().fit_transform(X)
        m = MLPRegressor(hidden_layer_sizes=(16,), max_iter=300, random_state=0)
        m.fit(Xs, y)
        assert m.score(Xs, y) > 0.95
