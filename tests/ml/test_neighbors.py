"""Tests for k-nearest-neighbours regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.neighbors import KNeighborsRegressor, _pairwise_distances


class TestPairwiseDistances:
    def test_euclidean_known_values(self):
        A = np.array([[0.0, 0.0]])
        B = np.array([[3.0, 4.0], [0.0, 0.0]])
        d = _pairwise_distances(A, B, 2.0)
        assert np.allclose(d, [[5.0, 0.0]])

    def test_manhattan_known_values(self):
        A = np.array([[1.0, 1.0]])
        B = np.array([[4.0, 5.0]])
        assert np.allclose(_pairwise_distances(A, B, 1.0), [[7.0]])

    def test_euclidean_matches_generic_minkowski(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(5, 3))
        B = rng.normal(size=(7, 3))
        fast = _pairwise_distances(A, B, 2.0)
        # p=2 via the generic branch
        generic = (np.abs(A[:, None, :] - B[None, :, :]) ** 2).sum(axis=2) ** 0.5
        assert np.allclose(fast, generic)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_self_distance_zero(self, n):
        rng = np.random.default_rng(n)
        A = rng.normal(size=(n, 2))
        d = _pairwise_distances(A, A, 2.0)
        # The expansion ||a||^2 - 2ab + ||b||^2 cancels imperfectly; after
        # sqrt the residual is ~1e-8 at unit scale.
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)


class TestKNeighborsRegressor:
    def test_k1_memorises(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        m = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        assert np.array_equal(m.predict(X), y)

    def test_uniform_average_of_k(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        m = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        # Query at 0.4: neighbours are x=0 and x=1.
        assert m.predict([[0.4]])[0] == pytest.approx(1.0)

    def test_k_clipped_to_history_size(self):
        # Online safety: k larger than the training set must not crash.
        m = KNeighborsRegressor(n_neighbors=10).fit([[1.0], [2.0]], [1.0, 3.0])
        assert m.predict([[1.5]])[0] == pytest.approx(2.0)

    def test_distance_weights_exact_match_dominates(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([5.0, 50.0])
        m = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        assert m.predict([[0.0]])[0] == pytest.approx(5.0)

    def test_distance_weights_interpolate(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        m = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        # Query at 2/3: distances 2/3 and 1/3, so weights 1.5 and 3.0.
        got = m.predict([[2.0 / 3.0]])[0]
        assert got == pytest.approx((1.5 * 0.0 + 3.0 * 10.0) / 4.5, rel=1e-6)

    def test_partial_fit_appends(self):
        m = KNeighborsRegressor(n_neighbors=1).fit([[0.0]], [1.0])
        m.partial_fit([[5.0]], [9.0])
        assert m.predict([[4.9]])[0] == pytest.approx(9.0)

    def test_partial_fit_dimension_guard(self):
        m = KNeighborsRegressor().fit([[0.0, 1.0]], [1.0])
        with pytest.raises(ValueError, match="dimension"):
            m.partial_fit([[0.0]], [1.0])

    def test_kneighbors_returns_sorted_distances(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        m = KNeighborsRegressor(n_neighbors=5).fit(X, y)
        d, idx = m.kneighbors(rng.normal(size=(4, 2)))
        assert np.all(np.diff(d, axis=1) >= -1e-12)
        assert idx.shape == (4, 5)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNeighborsRegressor(n_neighbors=0).fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="weights"):
            KNeighborsRegressor(weights="bogus").fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="p must be positive"):
            KNeighborsRegressor(p=0.0).fit([[1.0]], [1.0])

    def test_fit_copies_training_data(self):
        X = np.array([[1.0], [2.0]])
        y = np.array([1.0, 2.0])
        m = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        X[0, 0] = 999.0  # mutating caller data must not corrupt the model
        assert m.predict([[1.0]])[0] == pytest.approx(1.0)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_predictions_within_target_range(self, k):
        rng = np.random.default_rng(k)
        X = rng.uniform(0, 1, size=(40, 2))
        y = rng.uniform(10, 20, size=40)
        m = KNeighborsRegressor(n_neighbors=k).fit(X, y)
        p = m.predict(rng.uniform(0, 1, size=(10, 2)))
        assert np.all(p >= 10.0 - 1e-9) and np.all(p <= 20.0 + 1e-9)
