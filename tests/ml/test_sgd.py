"""Tests for incremental linear models (SGD and recursive least squares)."""

import numpy as np
import pytest

from repro.ml.linear import RidgeRegression
from repro.ml.sgd import RecursiveLeastSquares, SGDRegressor


def make_stream(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 5, size=(n, 2))
    y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 3.0 + rng.normal(0, 0.05, n)
    return X, y


class TestSGDRegressor:
    def test_fit_approximates_truth(self):
        X, y = make_stream()
        m = SGDRegressor(max_iter=300, learning_rate=0.05).fit(X, y)
        assert m.coef_[0] == pytest.approx(2.0, abs=0.15)
        assert m.coef_[1] == pytest.approx(-1.0, abs=0.15)

    def test_partial_fit_converges_over_stream(self):
        X, y = make_stream(n=2000)
        m = SGDRegressor(learning_rate=0.05)
        for i in range(X.shape[0]):
            m.partial_fit(X[i : i + 1], y[i : i + 1])
        assert m.score(X, y) > 0.95

    def test_partial_fit_dimension_change_rejected(self):
        m = SGDRegressor()
        m.partial_fit([[1.0, 2.0]], [1.0])
        with pytest.raises(ValueError, match="features"):
            m.partial_fit([[1.0]], [1.0])

    def test_fit_resets_state(self):
        X, y = make_stream()
        m = SGDRegressor(max_iter=50)
        m.fit(X, y)
        t_first = m.t_
        m.fit(X, y)
        assert m.t_ == t_first  # identical epochs, not accumulated

    def test_deterministic_given_seed(self):
        X, y = make_stream()
        a = SGDRegressor(random_state=3, max_iter=20).fit(X, y).coef_
        b = SGDRegressor(random_state=3, max_iter=20).fit(X, y).coef_
        assert np.array_equal(a, b)


class TestRecursiveLeastSquares:
    def test_matches_batch_ridge(self):
        # The defining property: sequential RLS equals batch ridge on the
        # uncentred design (fit_intercept handled via augmentation).
        X, y = make_stream(n=100)
        rls = RecursiveLeastSquares(ridge=1.0)
        for i in range(X.shape[0]):
            rls.partial_fit(X[i : i + 1], y[i : i + 1])
        # Batch solution of the same augmented ridge problem.
        Xa = np.hstack([X, np.ones((X.shape[0], 1))])
        w = np.linalg.solve(Xa.T @ Xa + np.eye(3), Xa.T @ y)
        assert np.allclose(rls.coef_, w[:-1], atol=1e-6)
        assert rls.intercept_ == pytest.approx(w[-1], abs=1e-6)

    def test_batch_and_incremental_identical(self):
        X, y = make_stream(n=60)
        a = RecursiveLeastSquares().fit(X, y)
        b = RecursiveLeastSquares()
        for i in range(X.shape[0]):
            b.partial_fit(X[i : i + 1], y[i : i + 1])
        assert np.allclose(a.coef_, b.coef_, atol=1e-8)

    def test_forgetting_tracks_drift(self):
        rng = np.random.default_rng(1)
        X1 = rng.uniform(0, 5, size=(150, 1))
        y1 = 1.0 * X1[:, 0]
        X2 = rng.uniform(0, 5, size=(150, 1))
        y2 = 5.0 * X2[:, 0]  # regime change
        fast = RecursiveLeastSquares(forgetting=0.9)
        slow = RecursiveLeastSquares(forgetting=1.0)
        for m in (fast, slow):
            m.partial_fit(X1, y1)
            m.partial_fit(X2, y2)
        # The forgetting model must be closer to the new slope.
        assert abs(fast.coef_[0] - 5.0) < abs(slow.coef_[0] - 5.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError, match="ridge"):
            RecursiveLeastSquares(ridge=0.0).fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="forgetting"):
            RecursiveLeastSquares(forgetting=1.5).fit([[1.0]], [1.0])

    def test_close_to_ols_with_small_ridge(self):
        X, y = make_stream(n=200)
        rls = RecursiveLeastSquares(ridge=1e-6).fit(X, y)
        ref = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.allclose(rls.coef_, ref.coef_, atol=1e-3)

    def test_single_point_predicts_its_label(self):
        m = RecursiveLeastSquares(ridge=1e-6).fit([[4.0]], [10.0])
        assert m.predict([[4.0]])[0] == pytest.approx(10.0, rel=1e-3)
