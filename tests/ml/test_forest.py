"""Tests for the random-forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor


def make_data(n=150, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 4, size=(n, 2))
    y = np.sin(X[:, 0]) * 3 + X[:, 1] ** 2 + rng.normal(0, 0.2, n)
    return X, y


class TestRandomForest:
    def test_fits_nonlinear_signal(self):
        X, y = make_data()
        m = RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
        assert m.score(X, y) > 0.9

    def test_prediction_is_mean_of_trees(self):
        X, y = make_data(n=60)
        m = RandomForestRegressor(n_estimators=7, random_state=1).fit(X, y)
        per_tree = np.stack([t.predict(X[:10]) for t in m.estimators_])
        assert np.allclose(m.predict(X[:10]), per_tree.mean(axis=0))

    def test_deterministic_given_seed(self):
        X, y = make_data(n=80)
        a = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seed_changes_model(self):
        X, y = make_data(n=80)
        a = RandomForestRegressor(n_estimators=10, random_state=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=10, random_state=2).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_predictions_within_target_range(self):
        X, y = make_data(n=100)
        m = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        rng = np.random.default_rng(9)
        p = m.predict(rng.uniform(0, 4, size=(30, 2)))
        assert p.min() >= y.min() - 1e-9 and p.max() <= y.max() + 1e-9

    def test_no_bootstrap_full_features_equals_single_tree_average(self):
        # Without bootstrap and without feature subsampling every tree is
        # identical, so the forest must equal a single tree.
        X, y = make_data(n=60)
        forest = RandomForestRegressor(
            n_estimators=5, bootstrap=False, max_features=None, random_state=0
        ).fit(X, y)
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert np.allclose(forest.predict(X), tree.predict(X))

    def test_oob_score_reasonable(self):
        X, y = make_data(n=200)
        m = RandomForestRegressor(
            n_estimators=40, oob_score=True, random_state=0
        ).fit(X, y)
        assert 0.5 < m.oob_score_ <= 1.0

    def test_thread_parallel_fit_matches_serial(self):
        X, y = make_data(n=100)
        serial = RandomForestRegressor(n_estimators=12, random_state=3, n_jobs=1).fit(X, y)
        parallel = RandomForestRegressor(n_estimators=12, random_state=3, n_jobs=4).fit(X, y)
        assert np.allclose(serial.predict(X), parallel.predict(X))

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestRegressor(n_estimators=0).fit([[1.0]], [1.0])

    def test_more_trees_reduce_oob_variance(self):
        X, y = make_data(n=150, seed=4)
        scores_small = [
            RandomForestRegressor(n_estimators=3, oob_score=True, random_state=s)
            .fit(X, y)
            .oob_score_
            for s in range(5)
        ]
        scores_big = [
            RandomForestRegressor(n_estimators=40, oob_score=True, random_state=s)
            .fit(X, y)
            .oob_score_
            for s in range(5)
        ]
        assert np.var(scores_big) < np.var(scores_small)
