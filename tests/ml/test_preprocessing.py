"""Tests for feature scalers, including online (partial_fit) behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.preprocessing import MinMaxScaler, RobustScaler, StandardScaler


def batches(seed=0, n=120, d=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(loc=5.0, scale=2.0, size=(n, d))
    return X


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = batches()
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self):
        X = batches(1)
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_constant_feature_noop(self):
        X = np.hstack([batches(2, d=1), np.full((120, 1), 3.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 1], 0.0)  # centered, scale left at 1

    def test_partial_fit_matches_batch(self):
        X = batches(3, n=90)
        inc = StandardScaler()
        for chunk in np.array_split(X, 7):
            inc.partial_fit(chunk)
        ref = StandardScaler().fit(X)
        assert np.allclose(inc.mean_, ref.mean_)
        assert np.allclose(inc.var_, ref.var_, rtol=1e-10)

    def test_partial_fit_single_rows(self):
        X = batches(4, n=25)
        inc = StandardScaler()
        for i in range(X.shape[0]):
            inc.partial_fit(X[i : i + 1])
        ref = StandardScaler().fit(X)
        assert np.allclose(inc.mean_, ref.mean_)
        assert np.allclose(inc.var_, ref.var_, rtol=1e-8)

    def test_with_mean_false(self):
        X = batches(5)
        sc = StandardScaler(with_mean=False).fit(X)
        Z = sc.transform(X)
        assert not np.allclose(Z.mean(axis=0), 0.0)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, n):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2)) * rng.uniform(0.5, 10)
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X, atol=1e-9)


class TestMinMaxScaler:
    def test_range_default(self):
        X = batches(6)
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_custom_range(self):
        X = batches(7)
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert Z.min() == pytest.approx(-1.0)
        assert Z.max() == pytest.approx(1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="feature_range"):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(batches())

    def test_partial_fit_extends_bounds(self):
        sc = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        sc.partial_fit(np.array([[2.0]]))
        assert sc.transform([[2.0]])[0, 0] == pytest.approx(1.0)
        assert sc.transform([[1.0]])[0, 0] == pytest.approx(0.5)

    def test_inverse_roundtrip(self):
        X = batches(8)
        sc = MinMaxScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_constant_feature_noop(self):
        X = np.full((10, 1), 4.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.allclose(Z, 0.0)


class TestRobustScaler:
    def test_median_centred(self):
        X = batches(9)
        Z = RobustScaler().fit_transform(X)
        assert np.allclose(np.median(Z, axis=0), 0.0, atol=1e-12)

    def test_outlier_insensitivity_vs_standard(self):
        X = batches(10, n=100, d=1)
        X_out = X.copy()
        X_out[0, 0] = 1e6  # a single wild peak-memory outlier
        rob_clean = RobustScaler().fit(X)
        rob_dirty = RobustScaler().fit(X_out)
        std_clean = StandardScaler().fit(X)
        std_dirty = StandardScaler().fit(X_out)
        rob_shift = abs(rob_dirty.center_[0] - rob_clean.center_[0])
        std_shift = abs(std_dirty.mean_[0] - std_clean.mean_[0])
        assert rob_shift < std_shift

    def test_invalid_quantile_range(self):
        with pytest.raises(ValueError, match="quantile_range"):
            RobustScaler(quantile_range=(75.0, 25.0)).fit(batches())

    def test_inverse_roundtrip(self):
        X = batches(11)
        sc = RobustScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)
