"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeRegressor, _best_split


class TestBestSplit:
    def test_obvious_split(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        f, thr, gain = _best_split(X, y, np.array([0]), 1)
        assert f == 0
        assert 1.0 < thr < 10.0
        assert gain == pytest.approx(100.0)  # SSE drops from 100 to 0

    def test_no_split_on_constant_feature(self):
        X = np.ones((4, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0])
        f, _, _ = _best_split(X, y, np.array([0]), 1)
        assert f == -1

    def test_min_samples_leaf_respected(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 0.0, 100.0])
        # With min_samples_leaf=2 the best cut (isolating the outlier) is
        # forbidden; only the middle cut remains legal.
        f, thr, _ = _best_split(X, y, np.array([0]), 2)
        assert f == 0
        assert thr == pytest.approx(1.5)


class TestDecisionTree:
    def test_memorises_distinct_points(self):
        X = np.arange(8, dtype=float).reshape(-1, 1)
        y = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        m = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(m.predict(X), y)

    def test_single_leaf_for_constant_target(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 7.0)
        m = DecisionTreeRegressor().fit(X, y)
        assert m.n_leaves_ == 1
        assert m.predict([[100.0]])[0] == pytest.approx(7.0)

    def test_max_depth_limits_depth(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 3))
        y = rng.normal(size=200)
        for depth in (1, 2, 4):
            m = DecisionTreeRegressor(max_depth=depth).fit(X, y)
            assert m.depth_ <= depth

    def test_stump_is_piecewise_two_values(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(100, 1))
        y = (X[:, 0] > 0.5).astype(float)
        m = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert len(np.unique(m.predict(X))) <= 2

    def test_step_function_learned_exactly(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = np.where(X[:, 0] < 0.5, 2.0, 8.0)
        m = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert m.predict([[0.1]])[0] == pytest.approx(2.0)
        assert m.predict([[0.9]])[0] == pytest.approx(8.0)

    def test_min_samples_leaf_enforced_in_tree(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(64, 2))
        y = rng.normal(size=64)
        m = DecisionTreeRegressor(min_samples_leaf=8).fit(X, y)
        leaf_sizes = [n.n_samples for n in m.nodes_ if n.is_leaf]
        assert min(leaf_sizes) >= 8

    def test_predictions_are_leaf_means(self):
        # Every prediction must equal the mean of some training subset, so
        # predictions lie within [min(y), max(y)].
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(100, 2))
        y = rng.uniform(5, 6, size=100)
        m = DecisionTreeRegressor(max_depth=4).fit(X, y)
        p = m.predict(rng.uniform(size=(50, 2)))
        assert p.min() >= 5.0 - 1e-9 and p.max() <= 6.0 + 1e-9

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="min_samples_split"):
            DecisionTreeRegressor(min_samples_split=1).fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="min_samples_leaf"):
            DecisionTreeRegressor(min_samples_leaf=0).fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTreeRegressor(max_depth=0).fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeRegressor(max_features="bogus").fit([[1.0], [2.0]], [1.0, 2.0])

    def test_max_features_variants(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(50, 4))
        y = X @ np.array([1.0, 2.0, 3.0, 4.0])
        for mf in (None, "sqrt", "log2", 2, 0.5):
            m = DecisionTreeRegressor(max_features=mf, random_state=0).fit(X, y)
            assert np.isfinite(m.predict(X)).all()

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(80, 3))
        y = rng.normal(size=80)
        p1 = DecisionTreeRegressor(max_features="sqrt", random_state=9).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_features="sqrt", random_state=9).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_fitting_never_exceeds_target_range(self, n):
        rng = np.random.default_rng(n)
        X = rng.uniform(size=(n, 2))
        y = rng.normal(size=n)
        m = DecisionTreeRegressor(max_depth=3).fit(X, y)
        p = m.predict(X)
        assert p.min() >= y.min() - 1e-9
        assert p.max() <= y.max() + 1e-9

    def test_deeper_trees_fit_no_worse_in_sample(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(size=(120, 2))
        y = np.sin(4 * X[:, 0]) + rng.normal(0, 0.1, 120)
        errs = []
        for depth in (1, 3, 6, None):
            m = DecisionTreeRegressor(max_depth=depth).fit(X, y)
            errs.append(float(np.mean((m.predict(X) - y) ** 2)))
        assert errs == sorted(errs, reverse=True)
