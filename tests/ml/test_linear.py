"""Tests for OLS, ridge, and quantile regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import LinearRegression, QuantileRegressor, RidgeRegression
from repro.ml.metrics import pinball_loss


def make_linear(n=80, slope=3.0, intercept=5.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, size=(n, 1))
    y = slope * x[:, 0] + intercept + rng.normal(0, noise, n)
    return x, y


class TestLinearRegression:
    def test_recovers_exact_line(self):
        X, y = make_linear()
        m = LinearRegression().fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0)
        assert m.intercept_ == pytest.approx(5.0)

    def test_prediction_matches_formula(self):
        X, y = make_linear(noise=0.5)
        m = LinearRegression().fit(X, y)
        got = m.predict([[4.0]])
        assert got[0] == pytest.approx(4.0 * m.coef_[0] + m.intercept_)

    def test_no_intercept(self):
        X, y = make_linear(intercept=0.0)
        m = LinearRegression(fit_intercept=False).fit(X, y)
        assert m.intercept_ == 0.0
        assert m.coef_[0] == pytest.approx(3.0)

    def test_multifeature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        w = np.array([1.0, -2.0, 0.5])
        y = X @ w + 7.0
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.coef_, w)
        assert m.intercept_ == pytest.approx(7.0)

    def test_rank_deficient_constant_inputs(self):
        # All-identical inputs: the SVD solver must not blow up, and the
        # prediction at the seen input must equal the mean target.
        X = np.full((5, 1), 3.0)
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        m = LinearRegression().fit(X, y)
        assert m.predict([[3.0]])[0] == pytest.approx(3.0)

    def test_single_sample(self):
        m = LinearRegression().fit([[2.0]], [4.0])
        assert m.predict([[2.0]])[0] == pytest.approx(4.0)

    def test_feature_count_mismatch_raises(self):
        X, y = make_linear()
        m = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            m.predict([[1.0, 2.0]])

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_recovers_arbitrary_lines(self, slope, intercept):
        x = np.linspace(0, 10, 20).reshape(-1, 1)
        y = slope * x[:, 0] + intercept
        m = LinearRegression().fit(x, y)
        assert np.allclose(m.predict(x), y, atol=1e-6 + 1e-6 * abs(slope))


class TestRidgeRegression:
    def test_zero_alpha_matches_ols(self):
        X, y = make_linear(noise=1.0)
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        assert ridge.coef_[0] == pytest.approx(ols.coef_[0], abs=1e-8)
        assert ridge.intercept_ == pytest.approx(ols.intercept_, abs=1e-8)

    def test_shrinkage_monotone_in_alpha(self):
        X, y = make_linear(noise=1.0)
        norms = [
            abs(RidgeRegression(alpha=a).fit(X, y).coef_[0])
            for a in (0.0, 1.0, 100.0, 10000.0)
        ]
        assert norms == sorted(norms, reverse=True)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RidgeRegression(alpha=-1.0).fit([[1.0]], [1.0])

    def test_intercept_survives_shrinkage(self):
        # With centering, heavy regularisation shrinks slopes to ~0 but the
        # intercept still tracks the target mean.
        X, y = make_linear(noise=0.0)
        m = RidgeRegression(alpha=1e9).fit(X, y)
        assert m.predict([[5.0]])[0] == pytest.approx(np.mean(y), rel=0.01)


class TestQuantileRegressor:
    def test_median_line_on_exact_data(self):
        X, y = make_linear()
        m = QuantileRegressor(quantile=0.5).fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0, abs=1e-6)
        assert m.intercept_ == pytest.approx(5.0, abs=1e-5)

    def test_quantile_ordering(self):
        # Higher quantile lines must lie (weakly) above lower ones at the
        # data's centre of mass.
        X, y = make_linear(noise=2.0, n=200)
        preds = {
            q: QuantileRegressor(quantile=q).fit(X, y).predict([[5.0]])[0]
            for q in (0.1, 0.5, 0.9)
        }
        assert preds[0.1] <= preds[0.5] + 1e-9
        assert preds[0.5] <= preds[0.9] + 1e-9

    def test_coverage_close_to_quantile(self):
        X, y = make_linear(noise=3.0, n=300, seed=5)
        q = 0.8
        m = QuantileRegressor(quantile=q).fit(X, y)
        cover = np.mean(y <= m.predict(X))
        assert cover == pytest.approx(q, abs=0.06)

    def test_minimises_pinball_loss_vs_ols(self):
        X, y = make_linear(noise=3.0, n=150, seed=7)
        q = 0.9
        qr = QuantileRegressor(quantile=q).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert pinball_loss(y, qr.predict(X), q) <= pinball_loss(
            y, ols.predict(X), q
        ) + 1e-9

    @pytest.mark.parametrize("q", [0.0, 1.0])
    def test_quantile_domain(self, q):
        with pytest.raises(ValueError, match="quantile"):
            QuantileRegressor(quantile=q).fit([[1.0], [2.0]], [1.0, 2.0])
