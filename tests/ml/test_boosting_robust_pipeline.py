"""Tests for gradient boosting, Huber regression, and pipelines."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.pipeline import Pipeline, make_pipeline
from repro.ml.preprocessing import StandardScaler
from repro.ml.robust import HuberRegressor
from repro.ml.sgd import SGDRegressor


def make_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 4, size=(n, 2))
    y = np.sin(X[:, 0]) * 2 + X[:, 1] + rng.normal(0, 0.1, n)
    return X, y


class TestGradientBoosting:
    def test_fits_nonlinear_signal(self):
        X, y = make_data()
        m = GradientBoostingRegressor(n_estimators=150, random_state=0).fit(X, y)
        assert m.score(X, y) > 0.95

    def test_training_loss_decreases(self):
        X, y = make_data()
        m = GradientBoostingRegressor(n_estimators=60, random_state=0).fit(X, y)
        assert m.train_score_[-1] < m.train_score_[0]
        assert len(m.train_score_) == 60

    def test_single_stage_is_shrunk_tree_plus_mean(self):
        X, y = make_data(n=50)
        m = GradientBoostingRegressor(
            n_estimators=1, learning_rate=0.5, random_state=0
        ).fit(X, y)
        p = m.predict(X)
        assert np.allclose(p.mean(), y.mean(), rtol=0.1)

    def test_staged_predict_converges_to_predict(self):
        X, y = make_data(n=80)
        m = GradientBoostingRegressor(n_estimators=20, random_state=0).fit(X, y)
        *_, last = m.staged_predict(X)
        assert np.allclose(last, m.predict(X))

    def test_huber_loss_resists_outlier(self):
        X, y = make_data(n=100, seed=1)
        y_out = y.copy()
        y_out[0] += 1000.0
        sq = GradientBoostingRegressor(
            n_estimators=50, loss="squared", random_state=0
        ).fit(X, y_out)
        hu = GradientBoostingRegressor(
            n_estimators=50, loss="huber", random_state=0
        ).fit(X, y_out)
        clean = ~np.eye(1, 100, 0, dtype=bool)[0]
        err_sq = np.mean((sq.predict(X[clean]) - y[clean]) ** 2)
        err_hu = np.mean((hu.predict(X[clean]) - y[clean]) ** 2)
        assert err_hu < err_sq

    def test_subsample_stochastic(self):
        X, y = make_data(n=120)
        m = GradientBoostingRegressor(
            n_estimators=30, subsample=0.5, random_state=0
        ).fit(X, y)
        assert m.score(X, y) > 0.8

    def test_validation(self):
        X, y = make_data(n=10)
        with pytest.raises(ValueError, match="n_estimators"):
            GradientBoostingRegressor(n_estimators=0).fit(X, y)
        with pytest.raises(ValueError, match="learning_rate"):
            GradientBoostingRegressor(learning_rate=0.0).fit(X, y)
        with pytest.raises(ValueError, match="loss"):
            GradientBoostingRegressor(loss="absolute").fit(X, y)
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingRegressor(subsample=0.0).fit(X, y)

    def test_deterministic(self):
        X, y = make_data(n=60)
        a = GradientBoostingRegressor(n_estimators=10, random_state=3).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=10, random_state=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestHuberRegressor:
    def test_matches_ols_on_clean_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, size=(100, 1))
        y = 3.0 * X[:, 0] + 5.0 + rng.normal(0, 0.1, 100)
        hub = HuberRegressor().fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert hub.coef_[0] == pytest.approx(ols.coef_[0], abs=0.05)

    def test_resists_outliers_better_than_ols(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 10, size=(100, 1))
        y = 3.0 * X[:, 0] + 5.0
        y[:5] += 500.0  # gross outliers
        hub = HuberRegressor().fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert abs(hub.coef_[0] - 3.0) < abs(ols.coef_[0] - 3.0)
        assert hub.coef_[0] == pytest.approx(3.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="delta"):
            HuberRegressor(delta=0.0).fit([[1.0], [2.0]], [1.0, 2.0])

    def test_no_intercept(self):
        X = np.linspace(1, 10, 30).reshape(-1, 1)
        y = 2.0 * X[:, 0]
        m = HuberRegressor(fit_intercept=False).fit(X, y)
        assert m.intercept_ == 0.0
        assert m.coef_[0] == pytest.approx(2.0, abs=0.01)


class TestPipeline:
    def test_scaler_plus_linear(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1e6, size=(80, 1))
        y = X[:, 0] * 1e-3 + 7.0
        pipe = make_pipeline(StandardScaler(), LinearRegression()).fit(X, y)
        assert pipe.score(X, y) > 0.999

    def test_named_steps(self):
        pipe = Pipeline([("sc", StandardScaler()), ("lr", LinearRegression())])
        assert set(pipe.named_steps) == {"sc", "lr"}

    def test_original_steps_not_mutated(self):
        sc = StandardScaler()
        pipe = Pipeline([("sc", sc), ("lr", LinearRegression())])
        X = np.array([[1.0], [2.0], [3.0]])
        pipe.fit(X, np.array([1.0, 2.0, 3.0]))
        assert not hasattr(sc, "mean_")  # pipeline fitted a clone

    def test_partial_fit_chain(self):
        pipe = make_pipeline(StandardScaler(), SGDRegressor(learning_rate=0.1))
        rng = np.random.default_rng(2)
        for _ in range(200):
            x = rng.uniform(0, 100)
            pipe.partial_fit(np.array([[x]]), [2.0 * x])
        pred = pipe.predict(np.array([[50.0]]))
        assert pred[0] == pytest.approx(100.0, rel=0.2)

    def test_partial_fit_requires_support(self):
        pipe = make_pipeline(StandardScaler(), LinearRegression())
        with pytest.raises(TypeError, match="partial_fit"):
            pipe.partial_fit(np.array([[1.0]]), [1.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one step"):
            Pipeline([]).fit([[1.0]], [1.0])
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline(
                [("a", StandardScaler()), ("a", LinearRegression())]
            ).fit([[1.0]], [1.0])
        with pytest.raises(TypeError, match="transform"):
            Pipeline(
                [("bad", LinearRegression()), ("lr", LinearRegression())]
            ).fit([[1.0], [2.0]], [1.0, 2.0])
