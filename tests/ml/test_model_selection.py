"""Tests for splits, K-fold, parameter grids, and grid search."""

import numpy as np
import pytest

from repro.ml.linear import RidgeRegression
from repro.ml.metrics import mean_absolute_error
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    cross_val_score,
    train_test_split,
)
from repro.ml.tree import DecisionTreeRegressor


def make_data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 1))
    y = 2.0 * X[:, 0] + rng.normal(0, 0.5, n)
    return X, y


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = make_data(n=100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2)
        assert Xte.shape[0] == 20 and Xtr.shape[0] == 80
        assert ytr.shape[0] == 80 and yte.shape[0] == 20

    def test_disjoint_and_complete(self):
        X, y = make_data(n=50)
        y = np.arange(50, dtype=float)  # unique labels to track identity
        _, _, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=1)
        assert sorted(np.concatenate([ytr, yte]).tolist()) == list(range(50))

    def test_reproducible(self):
        X, y = make_data()
        a = train_test_split(X, y, random_state=42)[3]
        b = train_test_split(X, y, random_state=42)[3]
        assert np.array_equal(a, b)

    def test_no_shuffle_is_prefix_split(self):
        X, y = make_data(n=10)
        _, Xte, _, _ = train_test_split(X, y, test_size=0.2, shuffle=False)
        assert np.array_equal(Xte, X[:2])

    @pytest.mark.parametrize("ts", [0.0, 1.0, -0.5])
    def test_invalid_test_size(self, ts):
        X, y = make_data(n=10)
        with pytest.raises(ValueError, match="test_size"):
            train_test_split(X, y, test_size=ts)


class TestKFold:
    def test_covers_all_indices_exactly_once(self):
        X = np.zeros((17, 1))
        seen = np.concatenate([test for _, test in KFold(4).split(X)])
        assert sorted(seen.tolist()) == list(range(17))

    def test_train_test_disjoint(self):
        X = np.zeros((20, 1))
        for train, test in KFold(5).split(X):
            assert not set(train) & set(test)

    def test_fold_size_balance(self):
        X = np.zeros((10, 1))
        sizes = [len(test) for _, test in KFold(3).split(X)]
        assert max(sizes) - min(sizes) <= 1

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="cannot split"):
            list(KFold(5).split(np.zeros((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError, match="n_splits"):
            KFold(1)

    def test_shuffle_reproducible(self):
        X = np.zeros((12, 1))
        a = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=0).split(X)]
        b = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=0).split(X)]
        assert a == b


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "z"} in combos

    def test_empty_grid_yields_one_empty_dict(self):
        assert list(ParameterGrid({})) == [{}]
        assert len(ParameterGrid({})) == 1

    def test_rejects_scalar_values(self):
        with pytest.raises(ValueError, match="sequences"):
            ParameterGrid({"a": 3})

    def test_rejects_empty_candidate_list(self):
        with pytest.raises(ValueError, match="empty"):
            ParameterGrid({"a": []})

    def test_deterministic_order(self):
        g = ParameterGrid({"b": [1, 2], "a": [3]})
        assert list(g) == [{"a": 3, "b": 1}, {"a": 3, "b": 2}]


class TestCrossValScore:
    def test_returns_one_score_per_fold(self):
        X, y = make_data()
        scores = cross_val_score(RidgeRegression(alpha=0.1), X, y, cv=4)
        assert scores.shape == (4,)
        assert np.all(scores >= 0)

    def test_custom_scoring(self):
        X, y = make_data()
        scores = cross_val_score(
            RidgeRegression(), X, y, cv=3, scoring=mean_absolute_error
        )
        assert np.all(scores < 2.0)

    def test_estimator_not_mutated(self):
        X, y = make_data()
        est = RidgeRegression()
        cross_val_score(est, X, y, cv=3)
        assert not hasattr(est, "coef_")


class TestGridSearchCV:
    def test_finds_better_depth(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(120, 1))
        y = (X[:, 0] > 0.5).astype(float)  # depth-1 suffices; deep overfits noise
        gs = GridSearchCV(
            DecisionTreeRegressor(random_state=0),
            {"max_depth": [1, 2, 8]},
            cv=4,
        ).fit(X, y + rng.normal(0, 0.05, 120))
        assert gs.best_params_["max_depth"] in (1, 2)

    def test_best_estimator_refit_on_all_data(self):
        X, y = make_data()
        gs = GridSearchCV(RidgeRegression(), {"alpha": [0.01, 1.0]}, cv=3).fit(X, y)
        assert hasattr(gs.best_estimator_, "coef_")
        assert np.isfinite(gs.predict(X[:3])).all()

    def test_cv_results_complete(self):
        X, y = make_data()
        gs = GridSearchCV(RidgeRegression(), {"alpha": [0.1, 1.0, 10.0]}, cv=3).fit(X, y)
        assert len(gs.cv_results_) == 3
        best = min(gs.cv_results_, key=lambda r: r["mean_score"])
        assert best["params"] == gs.best_params_

    def test_small_sample_degrades_to_insample(self):
        # Two samples cannot be 3-fold split; search must still work.
        gs = GridSearchCV(RidgeRegression(), {"alpha": [0.1, 1.0]}, cv=3)
        gs.fit([[1.0], [2.0]], [1.0, 2.0])
        assert "alpha" in gs.best_params_

    def test_requires_estimator(self):
        with pytest.raises(ValueError, match="estimator"):
            GridSearchCV(None, {"alpha": [1.0]}).fit([[1.0], [2.0]], [1.0, 2.0])
