"""Tests for the workload-source layer (protocol, registry, adapters)."""

import pickle

import pytest

from repro.sim.engine import OnlineSimulator
from repro.sim.results import result_to_dict
from repro.workflow.io import (
    TraceFormatError,
    save_trace,
    save_trace_jsonl,
)
from repro.workflow.nfcore import build_workflow_spec, build_workflow_trace
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace
from repro.workload import (
    NfCoreSource,
    SyntheticSource,
    TraceFileSource,
    TraceSource,
    WfCommonsSource,
    WorkloadSource,
    as_source,
    parse_workload,
    register_workload,
    workload_schemes,
)


@pytest.fixture
def small_trace():
    return build_workflow_trace("iwd", seed=3, scale=0.05)


class TestProtocolAndRegistry:
    def test_builtin_schemes_registered(self):
        schemes = workload_schemes()
        for scheme in ("synthetic", "nfcore", "trace", "wfcommons"):
            assert scheme in schemes

    def test_all_adapters_satisfy_protocol(self, small_trace, tmp_path):
        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        sources = [
            TraceSource(small_trace),
            NfCoreSource("iwd", seed=3, scale=0.05),
            SyntheticSource(build_workflow_spec("iwd"), seed=3, scale=0.05),
            TraceFileSource(path),
        ]
        for source in sources:
            assert isinstance(source, WorkloadSource)
            assert source.workflow == "iwd"
            assert source.n_tasks == len(small_trace)
            assert sum(1 for _ in source.iter_tasks()) == len(small_trace)
            traces = list(source.iter_traces())
            assert len(traces) == 1 and len(traces[0]) == len(small_trace)

    def test_parse_workload_specs(self):
        assert isinstance(parse_workload("synthetic:iwd"), NfCoreSource)
        assert isinstance(parse_workload("nfcore:iwd"), NfCoreSource)
        # A bare workflow name is shorthand for synthetic:<name>.
        assert isinstance(parse_workload("iwd"), NfCoreSource)

    def test_synthetic_name_is_canonical_across_aliases(self):
        # The CLI prints source.name; every alias labels identically.
        for spec in ("synthetic:iwd", "nfcore:iwd", "iwd"):
            assert parse_workload(spec).name == "synthetic:iwd"

    def test_parse_workload_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown workload scheme"):
            parse_workload("carrier-pigeon:iwd")

    def test_parse_workload_rejects_missing_argument(self):
        with pytest.raises(ValueError, match="missing its argument"):
            parse_workload("synthetic:")

    def test_register_custom_scheme(self, small_trace):
        register_workload(
            "test-fixed", lambda arg, seed, scale: TraceSource(small_trace)
        )
        try:
            src = parse_workload("test-fixed:whatever")
            assert src.workflow == "iwd"
        finally:
            from repro.workload.base import _SCHEMES

            _SCHEMES.pop("test-fixed", None)

    def test_as_source_accepts_everything(self, small_trace):
        assert as_source(small_trace).trace() is small_trace
        src = NfCoreSource("iwd")
        assert as_source(src) is src
        assert as_source("synthetic:iwd").workflow == "iwd"
        with pytest.raises(TypeError, match="workload must be"):
            as_source(42)


class TestSyntheticSource:
    def test_bit_for_bit_identical_to_direct_helper(self, small_trace):
        src = NfCoreSource("iwd", seed=3, scale=0.05)
        produced = src.trace()
        assert len(produced) == len(small_trace)
        for a, b in zip(produced, small_trace):
            assert a == b  # frozen dataclasses: full field equality

    def test_trace_is_cached(self):
        src = NfCoreSource("iwd", seed=0, scale=0.05)
        assert src.trace() is src.trace()

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            NfCoreSource("iwd", scale=0.0)

    def test_rejects_unknown_workflow(self):
        with pytest.raises(ValueError, match="unknown workflow"):
            NfCoreSource("nope")

    def test_pickle_drops_cache(self):
        src = NfCoreSource("iwd", seed=3, scale=0.05)
        trace = src.trace()
        clone = pickle.loads(pickle.dumps(src))
        assert clone._trace is None
        regenerated = clone.trace()
        assert len(regenerated) == len(trace)
        assert all(a == b for a, b in zip(regenerated, trace))


class TestTraceFileSource:
    def test_json_file_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        src = TraceFileSource(path)
        assert not src.streaming
        assert src.n_tasks == len(small_trace)
        assert all(a == b for a, b in zip(src.iter_tasks(), small_trace))

    def test_jsonl_streams_without_materializing(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        src = TraceFileSource(path)
        assert src.streaming
        assert src.n_tasks is None  # unknown until exhausted
        streamed = list(src.iter_tasks())
        assert len(streamed) == len(small_trace)
        assert all(a == b for a, b in zip(streamed, small_trace))
        # workflow name comes from the header without a full parse
        assert src.workflow == "iwd"

    def test_jsonl_replay_matches_json_replay(self, small_trace, tmp_path):
        from repro.baselines import WorkflowPresets

        json_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "t.jsonl"
        save_trace(small_trace, json_path)
        save_trace_jsonl(small_trace, jsonl_path)
        a = OnlineSimulator(workload=f"trace:{json_path}").run(
            WorkflowPresets()
        )
        b = OnlineSimulator(workload=f"trace:{jsonl_path}").run(
            WorkflowPresets()
        )
        assert result_to_dict(a) == result_to_dict(b)

    def test_scaled_source_subsamples(self, small_trace, tmp_path):
        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        src = TraceFileSource(path, seed=0, scale=0.5)
        assert src.n_tasks < len(small_trace)

    def test_missing_file_fails_eagerly(self, tmp_path):
        with pytest.raises(TraceFormatError, match="does not exist"):
            TraceFileSource(tmp_path / "ghost.json")


class TestOnlineSimulatorWorkloads:
    def test_workload_keyword_and_trace_positional_agree(self, small_trace):
        from repro.baselines import WorkflowPresets

        a = OnlineSimulator(small_trace).run(WorkflowPresets())
        b = OnlineSimulator(workload=TraceSource(small_trace)).run(
            WorkflowPresets()
        )
        c = OnlineSimulator(workload="synthetic:iwd").run(WorkflowPresets())
        assert result_to_dict(a) == result_to_dict(b)
        # The spec uses seed=0/scale=1, a different trace than the
        # fixture — but the same machinery; just sanity-check it ran.
        assert c.num_tasks > 0

    def test_requires_exactly_one_workload(self, small_trace):
        with pytest.raises(ValueError, match="exactly one"):
            OnlineSimulator()
        with pytest.raises(ValueError, match="exactly one"):
            OnlineSimulator(small_trace, workload="synthetic:iwd")

    def test_trace_property_materializes(self):
        sim = OnlineSimulator(workload=NfCoreSource("iwd", scale=0.05))
        assert sim.trace.workflow == "iwd"

    def test_event_backend_streams_jsonl(self, small_trace, tmp_path):
        """A streaming source runs through the kernel's times() path and
        matches the sized source bit-for-bit (same Poisson schedule)."""
        from repro.baselines import WorkflowPresets
        from repro.sim.backends import EventDrivenBackend

        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        streamed = OnlineSimulator(
            workload=TraceFileSource(path),
            backend=EventDrivenBackend(arrival="poisson:600", seed=7),
            cluster="4g:1,6g:1",
            placement="best-fit",
            time_to_failure=0.7,
        ).run(WorkflowPresets())
        sized = OnlineSimulator(
            small_trace,
            backend=EventDrivenBackend(arrival="poisson:600", seed=7),
            cluster="4g:1,6g:1",
            placement="best-fit",
            time_to_failure=0.7,
        ).run(WorkflowPresets())
        assert result_to_dict(streamed) == result_to_dict(sized)


class TestRunnerWorkloads:
    def test_run_cell_workload_spec(self):
        from repro.experiments.factories import method_factories
        from repro.sim.runner import run_cell

        res = run_cell(
            workload="synthetic:iwd",
            factory=method_factories()["Workflow-Presets"],
        )
        assert res.workflow == "iwd"
        assert res.num_tasks > 0

    def test_run_cell_rejects_both_or_neither(self, small_trace):
        from repro.experiments.factories import method_factories
        from repro.sim.runner import run_cell

        factory = method_factories()["Workflow-Presets"]
        with pytest.raises(ValueError, match="exactly one"):
            run_cell(small_trace, factory, workload="synthetic:iwd")
        with pytest.raises(ValueError, match="exactly one"):
            run_cell(factory=factory)

    def test_run_grid_workloads_mapping(self, small_trace, tmp_path):
        from repro.experiments.factories import method_factories
        from repro.sim.runner import run_grid

        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        factories = {
            "Workflow-Presets": method_factories()["Workflow-Presets"]
        }
        results = run_grid(
            factories=factories,
            workloads={
                "from-file": f"trace:{path}",
                "in-memory": small_trace,
            },
        )
        a = results["Workflow-Presets"]["from-file"]
        b = results["Workflow-Presets"]["in-memory"]
        assert result_to_dict(a) == result_to_dict(b)

    def test_run_grid_workload_specs_across_processes(
        self, small_trace, tmp_path
    ):
        from repro.experiments.factories import method_factories
        from repro.sim.runner import run_grid

        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        factories = {
            "Workflow-Presets": method_factories()["Workflow-Presets"]
        }
        serial = run_grid(
            factories=factories, workloads={"f": f"trace:{path}"}
        )
        parallel = run_grid(
            factories=factories,
            workloads={"f": f"trace:{path}"},
            n_workers=2,
        )
        assert result_to_dict(serial["Workflow-Presets"]["f"]) == (
            result_to_dict(parallel["Workflow-Presets"]["f"])
        )

    def test_run_grid_rejects_both_mappings(self, small_trace):
        from repro.experiments.factories import method_factories
        from repro.sim.runner import run_grid

        factories = {
            "Workflow-Presets": method_factories()["Workflow-Presets"]
        }
        with pytest.raises(ValueError, match="exactly one"):
            run_grid(
                {"t": small_trace},
                factories,
                workloads={"t": small_trace},
            )


class TestDagModeWithSources:
    def test_dag_simulation_from_source_matches_trace(self, small_trace):
        from repro.baselines import WorkflowPresets
        from repro.sim.backends import EventDrivenBackend

        def run(workload):
            return OnlineSimulator(
                workload=workload,
                backend=EventDrivenBackend(
                    dag="trace", workflow_arrival="2@fixed:0.05", seed=2
                ),
                cluster="4g:2",
            ).run(WorkflowPresets())

        assert result_to_dict(run(small_trace)) == result_to_dict(
            run(TraceSource(small_trace))
        )

    def test_wfcommons_source_runs_dag_mode(self, small_trace, tmp_path):
        import json

        from repro.baselines import WorkflowPresets
        from repro.sim.backends import EventDrivenBackend
        from repro.workload import trace_to_wfcommons

        path = tmp_path / "wf.json"
        path.write_text(json.dumps(trace_to_wfcommons(small_trace)))
        res = OnlineSimulator(
            workload=WfCommonsSource(path),
            backend=EventDrivenBackend(
                dag="trace", workflow_arrival="2@fixed:0.05", seed=2
            ),
            cluster="64g:2",
        ).run(WorkflowPresets())
        assert res.workflows is not None
        assert res.workflows.n_instances == 2
        assert res.num_tasks == 2 * len(small_trace)
