"""WfCommons ingestion tests: schemas, units, DAG collapse, edge cases."""

import json

import pytest

from repro.sim.engine import OnlineSimulator
from repro.sim.results import result_to_dict
from repro.workflow.io import TraceFormatError
from repro.workflow.nfcore import build_workflow_trace
from repro.workload import (
    WfCommonsSource,
    load_wfcommons,
    trace_to_wfcommons,
    wfcommons_to_trace,
)

MB = 1024.0 * 1024.0


def modern_doc(tasks, files=(), execution=(), name="wf"):
    return {
        "name": name,
        "schemaVersion": "1.5",
        "workflow": {
            "specification": {"tasks": list(tasks), "files": list(files)},
            "execution": {"tasks": list(execution)},
        },
    }


def legacy_doc(tasks, name="wf"):
    return {
        "name": name,
        "schemaVersion": "1.3",
        "workflow": {"tasks": list(tasks)},
    }


class TestModernSchema:
    def test_basic_ingestion_with_units(self):
        doc = modern_doc(
            tasks=[
                {"id": "blast_ID01", "parents": [], "children": ["merge_ID02"],
                 "inputFiles": ["f1"]},
                {"id": "merge_ID02", "parents": ["blast_ID01"], "children": [],
                 "inputFiles": []},
            ],
            files=[{"id": "f1", "sizeInBytes": 512 * MB}],
            execution=[
                {"id": "blast_ID01", "runtimeInSeconds": 3600.0,
                 "memoryInBytes": 2048 * MB, "avgCPU": 250.0,
                 "readBytes": 10 * MB, "writtenBytes": 5 * MB,
                 "machines": ["node-a"]},
                {"id": "merge_ID02", "runtimeInSeconds": 1800.0,
                 "memoryInBytes": 1024 * MB},
            ],
        )
        trace = wfcommons_to_trace(doc)
        assert trace.workflow == "wf"
        assert [i.task_type.name for i in trace] == ["blast", "merge"]
        blast, merge = trace.instances
        # memoryInBytes -> MB, runtimeInSeconds -> hours, sizes -> MB
        assert blast.peak_memory_mb == pytest.approx(2048.0)
        assert blast.runtime_hours == pytest.approx(1.0)
        assert blast.input_size_mb == pytest.approx(512.0)
        assert blast.cpu_percent == pytest.approx(250.0)
        assert blast.io_read_mb == pytest.approx(10.0)
        assert blast.io_write_mb == pytest.approx(5.0)
        assert blast.machine == "node-a"
        assert merge.peak_memory_mb == pytest.approx(1024.0)
        assert merge.runtime_hours == pytest.approx(0.5)
        # the type-level DAG and the per-instance edges both round-trip
        assert trace.dag is not None
        assert trace.dag.edges == [("blast", "merge")]
        assert trace.instance_edges == [(0, 1)]

    def test_category_beats_id_stem(self):
        doc = modern_doc(
            tasks=[{"id": "weird-name", "category": "blast", "parents": []}],
            execution=[{"id": "weird-name", "runtimeInSeconds": 60,
                        "memoryInBytes": MB}],
        )
        trace = wfcommons_to_trace(doc)
        assert trace.instances[0].task_type.name == "blast"

    def test_submission_order_follows_depth(self):
        # File order deliberately inverted vs dependency order.
        doc = modern_doc(
            tasks=[
                {"id": "sink_ID02", "parents": ["src_ID01"]},
                {"id": "src_ID01", "parents": []},
            ],
            execution=[
                {"id": "sink_ID02", "runtimeInSeconds": 60, "memoryInBytes": MB},
                {"id": "src_ID01", "runtimeInSeconds": 60, "memoryInBytes": MB},
            ],
        )
        trace = wfcommons_to_trace(doc)
        assert [i.task_type.name for i in trace] == ["src", "sink"]
        assert [i.instance_id for i in trace] == [0, 1]


class TestLegacySchema:
    def test_legacy_units_kb_and_bytes(self):
        doc = legacy_doc(
            [
                {"name": "blast_ID01", "runtime": 7200.0,
                 "memory": 2048 * 1024.0,  # KB -> 2048 MB
                 "parents": [], "children": [],
                 "files": [
                     {"link": "input", "name": "a", "size": 256 * MB},
                     {"link": "output", "name": "b", "size": 999 * MB},
                 ]},
            ]
        )
        trace = wfcommons_to_trace(doc)
        inst = trace.instances[0]
        assert inst.peak_memory_mb == pytest.approx(2048.0)
        assert inst.runtime_hours == pytest.approx(2.0)
        # only input-linked files count toward the prediction feature
        assert inst.input_size_mb == pytest.approx(256.0)

    def test_unit_mismatch_modern_vs_legacy(self):
        """The same physical 2 GiB peak via bytes (modern) and KB
        (legacy) must normalize to the same MB value."""
        modern = wfcommons_to_trace(
            modern_doc(
                tasks=[{"id": "t_ID01", "parents": []}],
                execution=[{"id": "t_ID01", "runtimeInSeconds": 60,
                            "memoryInBytes": 2 * 1024 * MB}],
            )
        )
        legacy = wfcommons_to_trace(
            legacy_doc(
                [{"name": "t_ID01", "runtime": 60,
                  "memory": 2 * 1024 * 1024.0, "parents": []}]
            )
        )
        assert modern.instances[0].peak_memory_mb == pytest.approx(
            legacy.instances[0].peak_memory_mb
        )
        assert modern.instances[0].peak_memory_mb == pytest.approx(2048.0)

    def test_jobs_key_accepted(self):
        doc = {
            "name": "wf",
            "workflow": {
                "jobs": [
                    {"name": "t_ID01", "runtime": 60, "memory": 1024.0,
                     "parents": []}
                ]
            },
        }
        assert len(wfcommons_to_trace(doc)) == 1


class TestMalformedDocuments:
    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_wfcommons(path)

    def test_missing_workflow_key(self):
        with pytest.raises(TraceFormatError, match="workflow"):
            wfcommons_to_trace({"name": "wf"})

    def test_non_object_document(self):
        with pytest.raises(TraceFormatError, match="JSON object"):
            wfcommons_to_trace([1, 2, 3])

    def test_no_tasks_anywhere(self):
        with pytest.raises(TraceFormatError, match="'specification'"):
            wfcommons_to_trace({"name": "wf", "workflow": {}})

    def test_empty_task_list(self):
        with pytest.raises(TraceFormatError, match="no tasks"):
            wfcommons_to_trace(modern_doc(tasks=[]))

    def test_unknown_parent_names_offending_path(self):
        doc = modern_doc(
            tasks=[{"id": "a_ID01", "parents": ["ghost_ID99"]}],
        )
        with pytest.raises(TraceFormatError, match="ghost_ID99") as exc:
            wfcommons_to_trace(doc)
        assert "parents" in str(exc.value)

    def test_duplicate_task_id(self):
        doc = modern_doc(
            tasks=[{"id": "a_ID01", "parents": []},
                   {"id": "a_ID01", "parents": []}],
        )
        with pytest.raises(TraceFormatError, match="duplicate task id"):
            wfcommons_to_trace(doc)

    def test_negative_memory_rejected(self):
        doc = modern_doc(
            tasks=[{"id": "a_ID01", "parents": []}],
            execution=[{"id": "a_ID01", "memoryInBytes": -5}],
        )
        with pytest.raises(TraceFormatError, match="memoryInBytes"):
            wfcommons_to_trace(doc)

    def test_non_numeric_aux_fields_are_typed_errors(self):
        modern = modern_doc(
            tasks=[{"id": "a_ID01", "parents": []}],
            execution=[{"id": "a_ID01", "runtimeInSeconds": 60,
                        "memoryInBytes": MB, "avgCPU": "n/a"}],
        )
        with pytest.raises(TraceFormatError, match="avgCPU"):
            wfcommons_to_trace(modern)
        legacy = legacy_doc(
            [{"name": "a_ID01", "runtime": 60, "memory": 1024.0,
              "parents": [], "bytesRead": {}}]
        )
        with pytest.raises(TraceFormatError, match="bytesRead"):
            wfcommons_to_trace(legacy)


class TestCyclicLinks:
    def test_instance_cycle_raises(self):
        doc = modern_doc(
            tasks=[
                {"id": "a_ID01", "parents": ["b_ID02"]},
                {"id": "b_ID02", "parents": ["a_ID01"]},
            ],
        )
        with pytest.raises(TraceFormatError, match="cyclic parent/child"):
            wfcommons_to_trace(doc)

    def test_self_loop_raises(self):
        doc = modern_doc(tasks=[{"id": "a_ID01", "parents": ["a_ID01"]}])
        with pytest.raises(TraceFormatError, match="itself"):
            wfcommons_to_trace(doc)

    def test_cycle_error_blames_only_cycle_members(self):
        # c/d are innocent descendants of the a<->b cycle and must not
        # be named in the error.
        doc = modern_doc(
            tasks=[
                {"id": "a_ID01", "parents": ["b_ID02"]},
                {"id": "b_ID02", "parents": ["a_ID01"]},
                {"id": "c_ID03", "parents": ["b_ID02"]},
                {"id": "d_ID04", "parents": ["c_ID03"]},
            ],
        )
        with pytest.raises(TraceFormatError) as exc:
            wfcommons_to_trace(doc)
        message = str(exc.value)
        assert "a_ID01" in message and "b_ID02" in message
        assert "c_ID03" not in message and "d_ID04" not in message

    def test_type_level_cycle_is_collapsed_acyclically(self):
        """a0 -> b0 -> a1 collapses to an acyclic type DAG (min-depth
        staging): only a -> b survives, never both directions."""
        doc = modern_doc(
            tasks=[
                {"id": "a_ID01", "parents": []},
                {"id": "b_ID01", "parents": ["a_ID01"]},
                {"id": "a_ID02", "parents": ["b_ID01"]},
            ],
        )
        trace = wfcommons_to_trace(doc)
        assert trace.dag is not None
        assert trace.dag.edges == [("a", "b")]
        # the full instance-level truth is still preserved
        assert trace.instance_edges == [(0, 1), (1, 2)]


class TestSeededFallbacks:
    def test_zero_memory_falls_back_to_type_median(self):
        doc = modern_doc(
            tasks=[{"id": f"t_ID0{i}", "parents": []} for i in (1, 2, 3)],
            execution=[
                {"id": "t_ID01", "runtimeInSeconds": 60,
                 "memoryInBytes": 4096 * MB},
                {"id": "t_ID02", "runtimeInSeconds": 60,
                 "memoryInBytes": 0},  # zero = missing
                # t_ID03 has no execution record at all
            ],
        )
        trace = wfcommons_to_trace(doc, seed=1)
        measured, zero, absent = trace.instances
        assert measured.peak_memory_mb == pytest.approx(4096.0)
        # fallbacks land near the type median (log-normal sigma 0.1)
        for inst in (zero, absent):
            assert 2500.0 < inst.peak_memory_mb < 6500.0
            assert inst.peak_memory_mb != pytest.approx(4096.0)

    def test_wholly_unmeasured_type_uses_prior(self):
        doc = modern_doc(tasks=[{"id": "t_ID01", "parents": []}])
        trace = wfcommons_to_trace(doc, seed=0)
        inst = trace.instances[0]
        assert inst.peak_memory_mb > 0
        assert inst.runtime_hours > 0

    def test_fallback_is_deterministic_per_seed(self):
        doc = modern_doc(
            tasks=[{"id": f"t_ID{i:02d}", "parents": []} for i in range(8)],
        )
        a = wfcommons_to_trace(doc, seed=5)
        b = wfcommons_to_trace(doc, seed=5)
        c = wfcommons_to_trace(doc, seed=6)
        assert [i.peak_memory_mb for i in a] == [i.peak_memory_mb for i in b]
        assert [i.runtime_hours for i in a] == [i.runtime_hours for i in b]
        assert [i.peak_memory_mb for i in a] != [i.peak_memory_mb for i in c]

    def test_missing_input_files_draw_is_seeded(self):
        doc = modern_doc(tasks=[{"id": "t_ID01", "parents": []}])
        a = wfcommons_to_trace(doc, seed=3).instances[0]
        b = wfcommons_to_trace(doc, seed=3).instances[0]
        assert a.input_size_mb == b.input_size_mb
        assert a.input_size_mb > 0

    def test_vectorized_fallback_matches_scalar_reference(self):
        """The batched lognormal fill is bit-for-bit the scalar loop.

        ``_fill_missing`` plans all draws and takes one vectorized
        ``rng.lognormal`` call; a numpy ``Generator`` consumes its bit
        stream identically for sequential scalar draws, so the values
        must equal an explicit per-draw reference loop.  Pins the PR 7
        vectorization against any future reordering of the plan.
        """
        import numpy as np

        from repro.workload.wfcommons import (
            _FALLBACK_INPUT_MB,
            _FALLBACK_RUNTIME_HOURS,
        )

        doc = modern_doc(
            tasks=[{"id": f"t_ID0{i}", "parents": []} for i in (1, 2, 3)],
            execution=[
                # Row 1 fully measured (memory + runtime, no input file):
                # its values seed the per-type pools the fills center on.
                {"id": "t_ID01", "runtimeInSeconds": 60,
                 "memoryInBytes": 4096 * MB},
            ],
        )
        seed = 11
        trace = wfcommons_to_trace(doc, seed=seed)
        measured, second, third = trace.instances

        rng = np.random.default_rng(seed)
        expected = []
        # Draw order = submission order, per row: memory, runtime, input
        # (row 1 is measured for memory+runtime, missing only input).
        expected.append(_FALLBACK_INPUT_MB * rng.lognormal(0.0, 0.5))
        for _ in (second, third):
            expected.append(4096.0 * rng.lognormal(0.0, 0.1))  # type median
            expected.append(
                (60.0 / 3600.0) * rng.lognormal(0.0, 0.1)
            )
            expected.append(_FALLBACK_INPUT_MB * rng.lognormal(0.0, 0.5))

        got = [
            measured.input_size_mb,
            second.peak_memory_mb, second.runtime_hours, second.input_size_mb,
            third.peak_memory_mb, third.runtime_hours, third.input_size_mb,
        ]
        assert got == pytest.approx(expected, rel=0, abs=0)


class TestExportRoundTrip:
    def test_synthetic_trace_roundtrips(self):
        trace = build_workflow_trace("iwd", seed=3, scale=0.05)
        back = wfcommons_to_trace(trace_to_wfcommons(trace))
        assert back.workflow == trace.workflow
        assert len(back) == len(trace)
        assert sorted(t.name for t in back.task_types) == sorted(
            t.name for t in trace.task_types
        )
        # memory round-trips exactly (power-of-two scaling is lossless)
        assert sorted(i.peak_memory_mb for i in back) == sorted(
            i.peak_memory_mb for i in trace
        )
        assert sorted(back.dag.edges) == sorted(trace.dag.edges)

    def test_preset_convention_matches_generator(self):
        doc = modern_doc(
            tasks=[{"id": "t_ID01", "parents": []}],
            execution=[{"id": "t_ID01", "runtimeInSeconds": 60,
                        "memoryInBytes": 3000 * MB}],
        )
        trace = wfcommons_to_trace(doc)
        # ceil(3000 * 2 / 1024) GB = 6 GB
        assert trace.task_types[0].preset_memory_mb == 6144.0

    def test_small_peak_gets_4gb_preset_floor(self):
        doc = modern_doc(
            tasks=[{"id": "t_ID01", "parents": []}],
            execution=[{"id": "t_ID01", "runtimeInSeconds": 60,
                        "memoryInBytes": 10 * MB}],
        )
        assert wfcommons_to_trace(doc).task_types[0].preset_memory_mb == 4096.0


class TestDeterministicReplay:
    """Acceptance: a WfCommons file runs deterministically in both modes."""

    @pytest.fixture
    def instance_path(self, tmp_path):
        trace = build_workflow_trace("iwd", seed=3, scale=0.05)
        path = tmp_path / "iwd_wfcommons.json"
        path.write_text(json.dumps(trace_to_wfcommons(trace)))
        return path

    def _run(self, path, **options):
        from repro.baselines import WorkflowPresets
        from repro.sim.backends import EventDrivenBackend

        return OnlineSimulator(
            workload=WfCommonsSource(path, seed=4),
            backend=EventDrivenBackend(seed=9, **options),
            cluster="64g:2",
        ).run(WorkflowPresets())

    def test_flat_mode_repeat_run_identical(self, instance_path):
        a = self._run(instance_path)
        b = self._run(instance_path)
        assert result_to_dict(a) == result_to_dict(b)
        assert a.num_tasks > 0

    def test_dag_mode_repeat_run_identical(self, instance_path):
        opts = dict(dag="trace", workflow_arrival="2@poisson:8")
        a = self._run(instance_path, **opts)
        b = self._run(instance_path, **opts)
        assert result_to_dict(a) == result_to_dict(b)
        assert a.workflows is not None and a.workflows.n_instances == 2

    def test_cli_workload_wfcommons_both_modes(self, instance_path, capsys):
        from repro.cli import main

        assert main([
            "simulate", "--workload", f"wfcommons:{instance_path}",
            "--method", "Workflow-Presets", "--backend", "event",
        ]) == 0
        flat_out = capsys.readouterr().out
        assert "wfcommons:" in flat_out
        assert main([
            "simulate", "--workload", f"wfcommons:{instance_path}",
            "--method", "Workflow-Presets", "--backend", "event",
            "--dag", "trace", "--workflow-arrival", "2@fixed:0.05",
            "--cluster", "64g:2",
        ]) == 0
        dag_out = capsys.readouterr().out
        assert "per-workflow-instance metrics" in dag_out
