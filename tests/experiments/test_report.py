"""Tests for the ASCII report rendering helpers."""

import numpy as np
import pytest

from repro.experiments.report import fmt, render_distribution, render_table


class TestFmt:
    def test_int_passthrough(self):
        assert fmt(42) == "42"

    def test_float_formatting(self):
        assert fmt(1234.5678) == "1,234.57"
        assert fmt(1234.5678, ndigits=1) == "1,234.6"

    def test_nan_dash(self):
        assert fmt(float("nan")) == "-"

    def test_string_passthrough(self):
        assert fmt("Sizey") == "Sizey"

    def test_numpy_scalars(self):
        assert fmt(np.int64(7)) == "7"
        assert fmt(np.float64(1.5)) == "1.50"


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["method", "wastage"],
            [["Sizey", 1684.21], ["Presets", 28370.77]],
            title="Fig 8a",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 8a"
        assert "method" in lines[1] and "wastage" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "1,684.21" in out and "28,370.77" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_numeric_right_aligned(self):
        out = render_table(["name", "v"], [["x", 1.0], ["longername", 100.0]])
        rows = out.splitlines()[2:]
        # Numeric column right-aligned: the shorter number is padded left.
        assert rows[0].endswith("  1.00")


class TestRenderDistribution:
    def test_five_number_summary(self):
        out = render_distribution(np.array([1.0, 2.0, 3.0, 4.0, 100.0]))
        assert "min=1.0" in out
        assert "median=3.0" in out
        assert "max=100.0" in out
        assert "n=5" in out

    def test_empty(self):
        assert render_distribution(np.array([])) == "(empty)"
