"""Integration tests for the experiment regenerators (small scales)."""

import numpy as np
import pytest

from repro.experiments import (
    METHOD_ORDER,
    cluster_scenarios,
    fig1_distributions,
    fig2_input_relation,
    fig7_utilization,
    fig9_training_time,
    fig11_model_selection,
    fig12_error_trend,
    method_factories,
    table1_workflow_stats,
)
from repro.experiments.fig8_main_results import run_main_grid
from repro.experiments.table2_per_workflow import winners


class TestFactories:
    def test_factories_cover_method_order(self):
        assert tuple(method_factories()) == METHOD_ORDER

    def test_factories_produce_fresh_instances(self):
        f = method_factories()["Sizey"]
        a, b = f(), f()
        assert a is not b
        assert a.name == "Sizey"

    def test_factories_are_picklable(self):
        import pickle

        for factory in method_factories().values():
            pickle.loads(pickle.dumps(factory))


class TestStaticArtifacts:
    def test_fig1(self, capsys):
        dists = fig1_distributions.run(seed=0, scale=0.5, verbose=True)
        out = capsys.readouterr().out
        assert "lcextrap" in out
        assert all(len(v) > 0 for v in dists.values())

    def test_fig2(self):
        out = fig2_input_relation.run(seed=0, scale=1.0, verbose=False)
        assert out["MarkDuplicates"].r2 > 0.9
        assert out["BaseRecalibrator"].r2 < out["MarkDuplicates"].r2

    def test_table1(self):
        stats = table1_workflow_stats.run(seed=0, scale=1.0, verbose=False)
        assert stats["mag"][0] == 8
        assert stats["rnaseq"][0] == 30

    def test_fig7(self):
        med = fig7_utilization.medians(seed=0, scale=0.25)
        assert set(med) == set(table1_workflow_stats.PAPER_TABLE_I)
        assert med["iwd"]["peak_memory_mb"] < med["methylseq"]["peak_memory_mb"]


class TestGridArtifacts:
    @pytest.fixture(scope="class")
    def grid(self):
        # Two small workflows keep this an integration test, not a bench.
        return run_main_grid(1.0, seed=0, scale=0.1, workflows=("iwd", "chipseq"))

    def test_grid_complete(self, grid):
        assert set(grid.results) == set(METHOD_ORDER)
        for per_wf in grid.results.values():
            assert set(per_wf) == {"iwd", "chipseq"}

    def test_presets_never_fail_and_waste_heavily(self, grid):
        assert grid.failures["Workflow-Presets"] == 0
        # On the light workflows Tovar's node-max retries can exceed the
        # presets (the paper's iwd column shows the same flip), so assert
        # presets are among the two most wasteful, not strictly the worst.
        ranked = sorted(grid.totals, key=grid.totals.get, reverse=True)
        assert "Workflow-Presets" in ranked[:2]

    def test_sizey_beats_presets(self, grid):
        assert grid.totals["Sizey"] < grid.totals["Workflow-Presets"]

    def test_reduction_metric_consistent(self, grid):
        best, best_w = grid.best_baseline()
        assert best != "Sizey"
        red = grid.sizey_reduction_vs_best_baseline()
        assert red == pytest.approx(1.0 - grid.totals["Sizey"] / best_w)

    def test_winners_helper(self, grid):
        won = winners(grid.per_workflow())
        assert set(won) == {"iwd", "chipseq"}
        assert all(m in METHOD_ORDER for m in won.values())

    def test_failure_distribution_lengths(self, grid):
        # iwd has 5 task types, chipseq 30 -> 35 entries per method.
        for m, dist in grid.failure_distributions.items():
            assert dist.shape == (35,), m


class TestSizeyAnalysisArtifacts:
    def test_fig9_training_time(self):
        out = fig9_training_time.run(
            workflows=("iwd",), seed=0, scale=0.1, verbose=False
        )
        r = out["iwd"]
        assert r.median_full_ms > r.median_incremental_ms > 0

    def test_fig11_selection_shares(self):
        shares = fig11_model_selection.run(
            workflow="iwd", seed=0, scale=0.3, verbose=False
        )
        assert shares
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_fig12_error_trend(self):
        trend = fig12_error_trend.run(
            task="Prokka", workflow="mag", seed=0, scale=0.15, verbose=False
        )
        assert trend.n >= 10
        assert np.all(np.isfinite(trend.errors_percent))

    def test_fig12_requires_history(self):
        with pytest.raises(RuntimeError, match="raw predictions"):
            fig12_error_trend.run(
                task="quast", workflow="mag", seed=0, scale=0.01, verbose=False
            )


class TestClusterScenarios:
    def test_grid_summarizes_every_scenario(self, capsys):
        scenarios = (
            cluster_scenarios.Scenario(name="uniform", cluster="128g:4"),
            cluster_scenarios.Scenario(
                name="hetero",
                cluster="128g:2,256g:2",
                placement="best-fit",
                arrival="poisson:40",
            ),
        )
        data = cluster_scenarios.run(
            seed=0,
            scale=0.05,
            methods=("Workflow-Presets",),
            scenarios=scenarios,
            verbose=True,
        )
        out = capsys.readouterr().out
        assert set(data) == {"uniform", "hetero"}
        for per_method in data.values():
            summary = per_method["Workflow-Presets"]
            assert summary["makespan_hours"] > 0
            assert 0.0 <= summary["mean_utilization"] <= 1.0
        assert "cluster scenario hetero" in out
        assert "128g:2,256g:2" in out

    def test_default_scenarios_are_well_formed(self):
        from repro.cluster.machine import parse_cluster_spec
        from repro.sim.arrivals import parse_arrival

        names = [s.name for s in cluster_scenarios.SCENARIOS]
        assert len(names) == len(set(names))
        for s in cluster_scenarios.SCENARIOS:
            parse_cluster_spec(s.cluster)  # must not raise
            parse_arrival(s.arrival)


class TestWorkflowScheduling:
    def test_grid_reports_per_workflow_metrics(self, capsys):
        from repro.experiments import workflow_scheduling

        scenarios = (
            workflow_scheduling.WorkflowScenario(
                name="hetero",
                cluster="128g:2,256g:1",
                workflow_arrival="3@poisson:2",
            ),
        )
        # The acceptance bar: >= 3 sizing methods on a heterogeneous
        # cluster, each reporting per-workflow makespan and stretch.
        data = workflow_scheduling.run(
            seed=0,
            scale=0.02,
            workflow="iwd",
            methods=("Sizey", "Witt-Percentile", "Workflow-Presets"),
            scenarios=scenarios,
            verbose=True,
        )
        out = capsys.readouterr().out
        assert set(data) == {"hetero"}
        assert set(data["hetero"]) == {
            "Sizey", "Witt-Percentile", "Workflow-Presets"
        }
        for summary in data["hetero"].values():
            assert summary["mean_workflow_makespan_hours"] > 0
            # >= 1 only up to float noise: makespan and the critical
            # path sum the same runtimes in different association order.
            assert summary["mean_stretch"] >= 1.0 - 1e-9
            per_wf = summary["per_workflow"]
            assert len(per_wf) == 3
            for w in per_wf:
                assert w["makespan_hours"] > 0
                assert w["stretch"] >= 1.0 - 1e-9
        assert "workflow scheduling hetero" in out
        assert "mean stretch" in out

    def test_default_scenarios_are_well_formed(self):
        from repro.cluster.machine import parse_cluster_spec
        from repro.experiments import workflow_scheduling
        from repro.sim.arrivals import parse_workflow_arrival

        names = [s.name for s in workflow_scheduling.SCENARIOS]
        assert len(names) == len(set(names))
        for s in workflow_scheduling.SCENARIOS:
            parse_cluster_spec(s.cluster)  # must not raise
            parse_workflow_arrival(s.workflow_arrival)


class TestWfCommonsReplay:
    def test_cell_replays_in_both_modes(self, capsys):
        from repro.experiments import wfcommons_replay

        data = wfcommons_replay.run(
            seed=0, scale=0.05, methods=("Workflow-Presets",), verbose=True
        )
        out = capsys.readouterr().out
        assert set(data) == {"flat", "dag"}
        flat = data["flat"]["Workflow-Presets"]
        dag = data["dag"]["Workflow-Presets"]
        assert flat["wastage_gbh"] > 0
        assert flat["makespan_hours"] > 0
        assert dag["mean_wf_makespan_hours"] > 0
        assert dag["mean_stretch"] >= 1.0 - 1e-9
        assert "wfcommons replay (flat event)" in out
        assert "wfcommons replay (DAG" in out

    def test_cell_accepts_external_instance(self, tmp_path):
        from repro.experiments import wfcommons_replay

        path = wfcommons_replay.fabricate_instance(
            tmp_path / "wf.json", workflow="iwd", seed=1, scale=0.05
        )
        data = wfcommons_replay.collect(
            seed=1, methods=("Workflow-Presets",), path=path
        )
        assert data["flat"]["Workflow-Presets"]["wastage_gbh"] > 0

    def test_cell_is_deterministic(self):
        from repro.experiments import wfcommons_replay

        a = wfcommons_replay.collect(
            seed=3, scale=0.05, methods=("Workflow-Presets",)
        )
        b = wfcommons_replay.collect(
            seed=3, scale=0.05, methods=("Workflow-Presets",)
        )
        assert a == b
