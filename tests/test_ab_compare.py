"""Unit tests for the A/B harness math in ``benchmarks/ab_compare.py``.

The subprocess probes are exercised by the CI ``--self-check`` smoke;
these pin the pure parts — normalized-ratio reduction and the BENCH.md
table rendering — which adjudicate perf claims and must not drift.
"""

import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks"),
)

from ab_compare import format_table, run_probe, spin_mops, summarize_pairs  # noqa: E402


def probe(events_per_sec: float, spin: float, cell: str = "flat") -> dict:
    return {
        "cell": cell,
        "n_events": 1000,
        "best_seconds": 1000 / events_per_sec,
        "events_per_sec": events_per_sec,
        "spin_mops": spin,
        "normalized": events_per_sec / spin,
    }


def test_summarize_pairs_cancels_host_drift():
    # Pair 2 ran on a 2x-slower host window: raw ev/s halves on both
    # sides, but the spin calibration halves too, so the normalized
    # ratio is unchanged and the median stays 1.5x.
    pairs = [
        (probe(100.0, 10.0), probe(150.0, 10.0)),
        (probe(50.0, 5.0), probe(75.0, 5.0)),
    ]
    s = summarize_pairs(pairs)
    assert s["ratios"] == pytest.approx([1.5, 1.5])
    assert s["median_ratio"] == pytest.approx(1.5)
    assert s["min_ratio"] == s["max_ratio"] == pytest.approx(1.5)
    # Raw bests are raw: the fast-window probes win.
    assert s["best_a"] == 100.0
    assert s["best_b"] == 150.0


def test_summarize_pairs_median_shrugs_off_outlier_pair():
    pairs = [
        (probe(100.0, 10.0), probe(160.0, 10.0)),
        (probe(100.0, 10.0), probe(150.0, 10.0)),
        # One pair straddled a drift edge: B looks absurdly fast.
        (probe(100.0, 10.0), probe(400.0, 10.0)),
    ]
    s = summarize_pairs(pairs)
    assert s["median_ratio"] == pytest.approx(1.6)
    assert s["max_ratio"] == pytest.approx(4.0)


def test_summarize_pairs_rejects_empty():
    with pytest.raises(ValueError, match="at least one"):
        summarize_pairs([])


def test_format_table_renders_markdown():
    s = summarize_pairs([(probe(100.0, 10.0), probe(250.0, 10.0))])
    table = format_table({"flat": s})
    lines = table.splitlines()
    assert lines[0].startswith("| cell | A best ev/s | B best ev/s |")
    assert lines[1].startswith("| --- |")
    assert "| flat | 100 | 250 | **2.50x** (2.50-2.50 over 1 pairs) |" in table


def test_run_probe_rejects_unknown_cell():
    with pytest.raises(ValueError, match="unknown cell"):
        run_probe("warp", rounds=1, scale=0.5)


def test_spin_mops_is_positive_and_fast():
    assert spin_mops(n=100_000) > 0.1
