"""Loadgen smoke at tiny scale against a real in-thread server."""

import pytest

from repro.serve.client import SizingClient
from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServerThread


class TestLoadgenSmoke:
    def test_replays_workload_and_reports_percentiles(self):
        with ServerThread(base_seed=0) as srv:
            report = run_loadgen(
                "synthetic:eager",
                host=srv.host,
                port=srv.port,
                tenants=2,
                rate_rps=1000.0,
                batch=8,
                max_tasks=48,
                seed=0,
            )
            with SizingClient(srv.host, srv.port) as client:
                registry = client.metrics()["registry"]
        assert report.n_errors == 0
        assert report.n_tasks == 48
        assert report.n_predict_requests == 6
        # The feedback loop ran: every predict got its observe.
        assert report.n_observe_requests == report.n_predict_requests
        assert report.requests_per_sec > 0
        assert (
            0
            < report.predict_p50_ms
            <= report.predict_p95_ms
            <= report.predict_p99_ms
        )
        # Both tenants served traffic and hold trained pools.
        assert set(registry["tenants"]) == {"tenant-0", "tenant-1"}
        for tenant in registry["tenants"].values():
            assert tenant["n_predictions"] > 0
            assert tenant["n_observations"] > 0

    def test_observe_can_be_disabled(self):
        with ServerThread(base_seed=0) as srv:
            report = run_loadgen(
                "synthetic:eager",
                host=srv.host,
                port=srv.port,
                tenants=1,
                rate_rps=1000.0,
                batch=16,
                max_tasks=32,
                observe=False,
                seed=0,
            )
        assert report.n_observe_requests == 0
        assert report.n_predict_requests == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="tenants"):
            run_loadgen("synthetic:eager", port=1, tenants=0)
        with pytest.raises(ValueError, match="rate_rps"):
            run_loadgen("synthetic:eager", port=1, rate_rps=0.0)
        with pytest.raises(ValueError, match="batch"):
            run_loadgen("synthetic:eager", port=1, batch=0)
