"""Dual-format ``/metrics``: payload schema and golden Prometheus text.

Two layers:

- a fully deterministic server (no sockets, injectable session clocks,
  frozen wall clock) whose Prometheus exposition is pinned bit-for-bit
  against ``tests/golden/metrics.prom`` — regenerate with
  ``REPRO_REGEN_GOLDENS=1``;
- live round-trips through :class:`ServerThread` asserting the schema
  invariants a scraper relies on: histogram buckets are cumulative and
  monotone, counters never decrease between polls, and both formats of
  the endpoint agree on every counter.
"""

import os
import time
from pathlib import Path

import pytest

from repro.obs.metrics import LATENCY_BUCKETS_S
from repro.serve.client import ServeError, SizingClient
from repro.serve.protocol import parse_observe_request
from repro.serve.server import ServerThread, SizingServer
from repro.serve.tenants import TenantSession
from repro.sim.interface import TaskSubmission

GOLDEN = Path(__file__).resolve().parent.parent / "golden" / "metrics.prom"


def _task(i: int) -> TaskSubmission:
    return TaskSubmission(
        task_type="align",
        workflow="wf",
        machine="default",
        instance_id=i,
        input_size_mb=1000.0 + i,
        preset_memory_mb=4096.0,
        timestamp=i,
    )


def _observations(i: int):
    _, items = parse_observe_request(
        {
            "tenant": "t",
            "observations": [
                {
                    "task_type": "align",
                    "workflow": "wf",
                    "machine": "default",
                    "instance_id": i,
                    "input_size_mb": 1000.0 + i,
                    "peak_memory_mb": 2000.0 + i,
                    "runtime_hours": 0.1,
                    "allocated_mb": 4096.0,
                    "success": True,
                }
            ],
        }
    )
    return items


def _ticking_clock(step_s: float):
    """A deterministic perf_counter: each call advances by ``step_s``."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step_s
        return state["t"]

    return clock


def _deterministic_server(monkeypatch) -> SizingServer:
    """A server with frozen uptime and hand-built tenant sessions.

    Never started: ``_metrics_payload`` needs no sockets, so the whole
    exposition is a pure function of the state assembled here.
    """
    monkeypatch.setattr(time, "time", lambda: 1234.5)
    server = SizingServer(port=0, base_seed=0, max_tenants=8)
    server.started_at = 1200.0  # uptime pins to 34.5 s
    # Latency clocks tick in fixed steps so every predict/observe call
    # "takes" exactly one step: 2 ms for acme, 40 ms for zen.
    acme = TenantSession("acme", base_seed=0, clock=_ticking_clock(0.002))
    zen = TenantSession("zen", base_seed=0, clock=_ticking_clock(0.04))
    with server.registry._lock:
        server.registry._sessions["acme"] = acme
        server.registry._sessions["zen"] = zen
        server.registry.evictions = 3
    acme.predict([_task(0), _task(1)])
    acme.observe(_observations(0))
    acme.predict([_task(2)])
    zen.predict([_task(0)])
    server.requests.update(
        {"predict": 3, "observe": 1, "metrics": 2, "healthz": 1}
    )
    server.errors = 1
    return server


def test_golden_prometheus_exposition(monkeypatch):
    server = _deterministic_server(monkeypatch)
    from repro.obs.metrics import render_prometheus

    text = render_prometheus(server._metrics_payload())
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(text)
        pytest.skip(f"regenerated {GOLDEN.name}")
    assert text == GOLDEN.read_text(), (
        "Prometheus exposition drifted from tests/golden/metrics.prom "
        "(REPRO_REGEN_GOLDENS=1 to regenerate after an intentional change)"
    )


def test_golden_covers_the_interesting_families():
    """The pinned exposition must exercise labels, histograms, escapes."""
    text = GOLDEN.read_text()
    assert "repro_serve_uptime_seconds 34.5" in text
    assert 'repro_serve_predictions_total{tenant="acme"} 3' in text
    assert 'repro_serve_predictions_total{tenant="zen"} 1' in text
    assert "repro_serve_tenant_evictions_total 3" in text
    # acme's 2 ms steps land in le=0.0025; zen's 40 ms in le=0.05.
    # Histograms count *calls* (acme made 2 predict calls for 3 tasks).
    assert (
        'repro_serve_latency_seconds_bucket{tenant="acme",op="predict",'
        'le="0.0025"} 2' in text
    )
    assert (
        'repro_serve_latency_seconds_bucket{tenant="zen",op="predict",'
        'le="0.05"} 1' in text
    )
    assert text.endswith("\n")


class TestLiveSchema:
    def _drive(self, client: SizingClient) -> None:
        client.predict(
            tenant="acme",
            tasks=[
                {
                    "task_type": "align",
                    "workflow": "wf",
                    "machine": "default",
                    "instance_id": 1,
                    "input_size_mb": 1000.0,
                    "preset_memory_mb": 4096.0,
                }
            ],
        )

    def test_json_buckets_are_cumulative_and_monotone(self):
        with ServerThread(base_seed=0) as srv, SizingClient(
            srv.host, srv.port
        ) as client:
            self._drive(client)
            payload = client.metrics()
            latency = payload["registry"]["tenants"]["acme"]["latency"]
            for op in ("predict", "observe"):
                snap = latency[op]
                bounds = [b for b, _ in snap["buckets"]]
                assert bounds[:-1] == list(LATENCY_BUCKETS_S)
                assert bounds[-1] is None
                cums = [c for _, c in snap["buckets"]]
                assert cums == sorted(cums)
                assert cums[-1] == snap["count"]

    def test_counters_never_decrease_across_polls(self):
        with ServerThread(base_seed=0) as srv, SizingClient(
            srv.host, srv.port
        ) as client:
            self._drive(client)
            first = client.metrics()
            self._drive(client)
            second = client.metrics()
            f_server, s_server = first["server"], second["server"]
            assert s_server["errors"] >= f_server["errors"]
            for endpoint, n in f_server["requests"].items():
                assert s_server["requests"][endpoint] >= n
            f_acme = first["registry"]["tenants"]["acme"]
            s_acme = second["registry"]["tenants"]["acme"]
            assert s_acme["n_predictions"] > f_acme["n_predictions"]
            f_hist = f_acme["latency"]["predict"]
            s_hist = s_acme["latency"]["predict"]
            assert s_hist["count"] > f_hist["count"]
            assert s_hist["sum_s"] >= f_hist["sum_s"]
            for (_, f_cum), (_, s_cum) in zip(
                f_hist["buckets"], s_hist["buckets"]
            ):
                assert s_cum >= f_cum

    def test_prometheus_scrape_agrees_with_json(self):
        with ServerThread(base_seed=0) as srv, SizingClient(
            srv.host, srv.port
        ) as client:
            self._drive(client)
            payload = client.metrics()
            text = client.metrics(format="prometheus")
            assert isinstance(text, str)
            assert text.startswith("# HELP repro_serve_uptime_seconds")
            n_predictions = payload["registry"]["tenants"]["acme"][
                "n_predictions"
            ]
            assert (
                f'repro_serve_predictions_total{{tenant="acme"}} '
                f"{n_predictions}" in text
            )

    def test_unknown_format_is_a_400(self):
        with ServerThread(base_seed=0) as srv, SizingClient(
            srv.host, srv.port
        ) as client:
            with pytest.raises(ServeError) as err:
                client.metrics(format="xml")
            assert err.value.status == 400
