"""Wire-protocol contract: every rejection names the offending field."""

import pytest

from repro.serve.protocol import (
    MAX_TASKS_PER_REQUEST,
    ProtocolError,
    parse_observe_request,
    parse_predict_request,
)


def _predict_body(**overrides):
    task = {"task_type": "align", "input_size_mb": 512.0}
    task.update(overrides)
    return {"tenant": "alice", "tasks": [task]}


def _observe_body(**overrides):
    obs = {
        "task_type": "align",
        "input_size_mb": 512.0,
        "peak_memory_mb": 2048.0,
    }
    obs.update(overrides)
    return {"tenant": "alice", "observations": [obs]}


class TestPredictParsing:
    def test_minimal_request_fills_defaults(self):
        tenant, tasks = parse_predict_request(_predict_body())
        assert tenant == "alice"
        (sub,) = tasks
        assert sub.task_type == "align"
        assert sub.workflow == "serve"
        assert sub.machine == "default"
        assert sub.preset_memory_mb == 4096.0
        assert sub.instance_id == -1

    def test_non_object_body(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request([1, 2])
        assert exc.value.field == "body"

    def test_missing_tenant(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request({"tasks": []})
        assert exc.value.field == "tenant"

    @pytest.mark.parametrize(
        "tenant", ["", "has space", "tab\there", 129 * "x", 42]
    )
    def test_bad_tenant_names(self, tenant):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request({"tenant": tenant, "tasks": [{}]})
        assert exc.value.field == "tenant"

    def test_empty_task_list(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request({"tenant": "a", "tasks": []})
        assert exc.value.field == "tasks"

    def test_oversized_task_list(self):
        body = {
            "tenant": "a",
            "tasks": [{}] * (MAX_TASKS_PER_REQUEST + 1),
        }
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request(body)
        assert exc.value.field == "tasks"

    def test_missing_input_size_names_indexed_field(self):
        body = {"tenant": "a", "tasks": [{"task_type": "align"}]}
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request(body)
        assert exc.value.field == "tasks[0].input_size_mb"

    def test_wrong_type_names_indexed_field(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request(_predict_body(input_size_mb="big"))
        assert exc.value.field == "tasks[0].input_size_mb"

    def test_bool_is_not_a_number(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request(_predict_body(input_size_mb=True))
        assert exc.value.field == "tasks[0].input_size_mb"

    def test_negative_input_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request(_predict_body(input_size_mb=-1.0))
        assert exc.value.field == "tasks[0].input_size_mb"

    def test_zero_preset_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_predict_request(_predict_body(preset_memory_mb=0.0))
        assert exc.value.field == "tasks[0].preset_memory_mb"

    def test_error_payload_shape(self):
        try:
            parse_predict_request(_predict_body(input_size_mb="big"))
        except ProtocolError as exc:
            payload = exc.to_payload()
        assert payload["error"]["field"] == "tasks[0].input_size_mb"
        assert "number" in payload["error"]["message"]


class TestObserveParsing:
    def test_minimal_request(self):
        tenant, items = parse_observe_request(_observe_body())
        assert tenant == "alice"
        (item,) = items
        assert item.record.peak_memory_mb == 2048.0
        assert item.record.success is True
        assert item.allocated_mb == 0.0

    def test_missing_peak(self):
        body = {
            "tenant": "a",
            "observations": [{"task_type": "t", "input_size_mb": 1.0}],
        }
        with pytest.raises(ProtocolError) as exc:
            parse_observe_request(body)
        assert exc.value.field == "observations[0].peak_memory_mb"

    def test_success_with_under_allocation_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_observe_request(
                _observe_body(success=True, allocated_mb=1024.0)
            )
        assert exc.value.field == "observations[0].allocated_mb"

    def test_failure_with_sufficient_allocation_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_observe_request(
                _observe_body(success=False, allocated_mb=4096.0)
            )
        assert exc.value.field == "observations[0].allocated_mb"

    def test_failure_with_under_allocation_accepted(self):
        _, items = parse_observe_request(
            _observe_body(success=False, allocated_mb=1024.0)
        )
        assert items[0].record.success is False
        assert items[0].allocated_mb == 1024.0

    def test_non_boolean_success(self):
        with pytest.raises(ProtocolError) as exc:
            parse_observe_request(_observe_body(success="yes"))
        assert exc.value.field == "observations[0].success"
