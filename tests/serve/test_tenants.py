"""Tenant registry: lazy creation, deterministic seeds, LRU eviction."""

import numpy as np

from repro.serve.protocol import parse_observe_request, parse_predict_request
from repro.serve.tenants import TenantRegistry, TenantSession, tenant_seed


def _observe(session: TenantSession, xs, slope=4.0):
    _, items = parse_observe_request(
        {
            "tenant": session.name,
            "observations": [
                {
                    "task_type": "align",
                    "input_size_mb": float(x),
                    "peak_memory_mb": slope * float(x) + 512.0,
                    "runtime_hours": 0.1,
                }
                for x in xs
            ],
        }
    )
    session.observe(items)


def _predict_one(session: TenantSession, x=1024.0):
    _, tasks = parse_predict_request(
        {
            "tenant": session.name,
            "tasks": [{"task_type": "align", "input_size_mb": float(x)}],
        }
    )
    return session.predict(tasks)[0]


class TestSeeding:
    def test_seed_is_deterministic_per_name(self):
        assert tenant_seed("alice", 7) == tenant_seed("alice", 7)
        assert tenant_seed("alice", 7) != tenant_seed("bob", 7)
        assert tenant_seed("alice", 7) != tenant_seed("alice", 8)

    def test_fresh_sessions_reproduce_estimates(self):
        """Same name + base seed + history => identical predictions."""
        estimates = []
        for _ in range(2):
            session = TenantSession("alice", base_seed=3)
            _observe(session, np.linspace(100, 2000, 8))
            estimates.append(_predict_one(session)["estimate_mb"])
        assert estimates[0] == estimates[1]


class TestSessionBehaviour:
    def test_cold_tenant_answers_from_preset(self):
        session = TenantSession("cold")
        result = _predict_one(session)
        assert result["source"] == "preset"
        assert result["estimate_mb"] == 4096.0

    def test_observe_feedback_switches_to_model(self):
        session = TenantSession("warm")
        _observe(session, np.linspace(100, 2000, 6))
        result = _predict_one(session)
        assert result["source"] == "model"
        assert result["estimate_mb"] != 4096.0

    def test_ledger_only_records_opted_in_observations(self):
        session = TenantSession("ledger")
        _, items = parse_observe_request(
            {
                "tenant": "ledger",
                "observations": [
                    {
                        "task_type": "t",
                        "input_size_mb": 10.0,
                        "peak_memory_mb": 100.0,
                        "runtime_hours": 1.0,
                        "allocated_mb": 1124.0,
                    },
                    {  # trains the models but skips accounting
                        "task_type": "t",
                        "input_size_mb": 11.0,
                        "peak_memory_mb": 100.0,
                        "runtime_hours": 1.0,
                    },
                ],
            }
        )
        session.observe(items)
        assert len(session.ledger.outcomes) == 1
        assert session.ledger.total_wastage_gbh == (1124.0 - 100.0) / 1024.0

    def test_metrics_shape(self):
        session = TenantSession("metrics")
        _observe(session, [100.0, 200.0, 300.0])
        _predict_one(session)
        m = session.metrics()
        assert m["n_observations"] == 3
        assert m["n_predictions"] == 1
        assert m["n_pools"] == 1
        (scores,) = m["model_accuracy"].values()
        assert set(scores) == set(session.config.model_classes)


class TestRegistry:
    def test_lazy_creation_and_identity(self):
        registry = TenantRegistry(max_tenants=4)
        a = registry.get("alice")
        assert registry.get("alice") is a
        assert len(registry) == 1
        assert registry.peek("bob") is None

    def test_lru_eviction_at_capacity(self):
        registry = TenantRegistry(max_tenants=2)
        registry.get("a")
        registry.get("b")
        registry.get("a")  # bump: "b" is now least recently used
        registry.get("c")
        assert registry.names() == ["a", "c"]
        assert registry.evictions == 1

    def test_evicted_tenant_recreates_with_same_seed(self):
        registry = TenantRegistry(max_tenants=1, base_seed=5)
        first = registry.get("alice").seed
        registry.get("bob")  # evicts alice
        assert registry.get("alice").seed == first

    def test_registry_metrics(self):
        registry = TenantRegistry(max_tenants=8)
        registry.get("a")
        registry.get("b")
        m = registry.metrics()
        assert m["n_tenants"] == 2
        assert set(m["tenants"]) == {"a", "b"}
