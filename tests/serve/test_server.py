"""End-to-end server contract over real sockets.

One module-scoped server (port 0, so parallel test workers never
collide) backs the read-only endpoint tests; tests that need fresh
tenant state start their own short-lived server or use unique tenant
names.
"""

import http.client
import json

import pytest

from repro.serve.client import ServeError, SizingClient
from repro.serve.server import ServerThread


@pytest.fixture(scope="module")
def server():
    with ServerThread(base_seed=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with SizingClient(server.host, server.port) as c:
        yield c


def _task(x=1024.0, **overrides):
    task = {"task_type": "align", "input_size_mb": x}
    task.update(overrides)
    return task


def _observation(x, slope=4.0, **overrides):
    obs = {
        "task_type": "align",
        "input_size_mb": float(x),
        "peak_memory_mb": slope * float(x) + 512.0,
        "runtime_hours": 0.1,
    }
    obs.update(overrides)
    return obs


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0

    def test_unknown_tenant_auto_creates(self, client):
        response = client.predict("fresh-tenant", [_task()])
        assert response["results"][0]["source"] == "preset"
        assert response["results"][0]["estimate_mb"] == 4096.0
        assert "fresh-tenant" in client.metrics()["registry"]["tenants"]

    def test_observe_feedback_changes_predictions_for_that_tenant_only(
        self, client
    ):
        before_a = client.predict("iso-a", [_task()])["results"][0]
        before_b = client.predict("iso-b", [_task()])["results"][0]
        client.observe(
            "iso-a", [_observation(x) for x in (200, 500, 900, 1400, 1900)]
        )
        after_a = client.predict("iso-a", [_task()])["results"][0]
        after_b = client.predict("iso-b", [_task()])["results"][0]
        # The observed tenant switched to its trained models...
        assert after_a["source"] == "model"
        assert after_a["estimate_mb"] != before_a["estimate_mb"]
        # ...while the untouched tenant's answer did not move at all.
        assert after_b == before_b

    def test_metrics_counts_requests(self, client):
        before = client.metrics()["server"]["requests"]
        client.healthz()
        client.predict("counter", [_task()])
        after = client.metrics()["server"]["requests"]
        assert after["healthz"] == before.get("healthz", 0) + 1
        assert after["predict"] == before.get("predict", 0) + 1

    def test_tenant_metrics_include_accuracy_and_wastage(self, client):
        client.observe(
            "metered",
            [
                _observation(x, allocated_mb=4.0 * x + 1024.0)
                for x in (300, 600, 900)
            ],
        )
        m = client.metrics()["registry"]["tenants"]["metered"]
        assert m["n_observations"] == 3
        assert m["wastage"]["total_gbh"] > 0.0
        assert m["model_accuracy"]  # one pool, scored per model class


class TestErrorContract:
    def test_malformed_json_is_typed_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        conn.request(
            "POST",
            "/predict",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"]["field"] == "body"

    def test_field_error_carries_field_path(self, client):
        with pytest.raises(ServeError) as exc:
            client.predict("alice", [{"task_type": "align"}])
        assert exc.value.status == 400
        assert exc.value.field == "tasks[0].input_size_mb"

    def test_unknown_path_404(self, client):
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/predict")
        assert exc.value.status == 405

    def test_inconsistent_observation_is_typed_400(self, client):
        with pytest.raises(ServeError) as exc:
            client.observe(
                "alice",
                [_observation(100.0, success=True, allocated_mb=1.0)],
            )
        assert exc.value.status == 400
        assert exc.value.field == "observations[0].allocated_mb"


class TestDeterminismAcrossRestarts:
    HISTORY = [(x, 4.0 * x + 512.0) for x in (150, 400, 800, 1200, 1700)]

    def _run_once(self) -> float:
        with ServerThread(base_seed=42) as srv, SizingClient(
            srv.host, srv.port
        ) as client:
            client.observe(
                "alice",
                [
                    {
                        "task_type": "align",
                        "input_size_mb": float(x),
                        "peak_memory_mb": peak,
                        "runtime_hours": 0.1,
                    }
                    for x, peak in self.HISTORY
                ],
            )
            return client.predict("alice", [_task()])["results"][0][
                "estimate_mb"
            ]

    def test_restart_reproduces_estimates(self):
        assert self._run_once() == self._run_once()


class TestEviction:
    def test_capacity_is_enforced_over_http(self):
        with ServerThread(max_tenants=2) as srv, SizingClient(
            srv.host, srv.port
        ) as client:
            for name in ("t0", "t1", "t2"):
                client.predict(name, [_task()])
            registry = client.metrics()["registry"]
            assert registry["n_tenants"] == 2
            assert registry["evictions"] == 1
            assert set(registry["tenants"]) == {"t1", "t2"}
