"""LatencyHistogram bucketing/merge and the Prometheus text renderer.

The bucket semantics pinned here (``bisect_left``: an observation equal
to a bound lands in that bound's bucket) are what the golden exposition
in ``tests/serve/test_prometheus.py`` relies on.
"""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    LatencyHistogram,
    escape_label,
    render_prometheus,
)


class TestLatencyHistogram:
    def test_bucket_edges_use_bisect_left(self):
        hist = LatencyHistogram()
        hist.observe(0.0005)  # exactly the first bound -> bucket le=0.0005
        hist.observe(0.002)  # between 0.001 and 0.0025 -> le=0.0025
        hist.observe(10.0)  # beyond the last bound -> +Inf only
        cum = dict(hist.cumulative_buckets())
        assert cum[0.0005] == 1
        assert cum[0.001] == 1
        assert cum[0.0025] == 2
        assert cum[2.5] == 2
        assert cum[None] == 3

    def test_cumulative_counts_are_monotone(self):
        hist = LatencyHistogram()
        for s in (0.0001, 0.003, 0.003, 0.07, 1.5, 9.0):
            hist.observe(s)
        counts = [c for _, c in hist.cumulative_buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count == 6

    def test_snapshot_shape_and_quantiles(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum_s"] == pytest.approx(sum(range(1, 101)) / 1000.0)
        assert snap["mean_ms"] == pytest.approx(50.5)
        assert snap["p50_ms"] == pytest.approx(50.0, abs=2.0)
        assert snap["p99_ms"] == pytest.approx(99.0, abs=2.0)
        assert snap["buckets"][-1] == [None, 100]

    def test_empty_snapshot_is_all_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean_ms"] == 0.0
        assert snap["p95_ms"] == 0.0
        assert all(cum == 0 for _, cum in snap["buckets"])

    def test_merge_sums_counts_and_quantile_state(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        b.observe(0.1)
        b.observe(0.2)
        a.merge(b)
        assert a.count == 3
        assert a.sum_s == pytest.approx(0.301)
        assert dict(a.cumulative_buckets())[None] == 3
        # Sketch state merged too: the median sits in b's range.
        assert a.snapshot()["p50_ms"] == pytest.approx(100.0, rel=0.2)

    def test_buckets_cover_serving_range(self):
        # The shared bounds must straddle both model-pool predictions
        # (sub-ms) and cold-tenant creation (hundreds of ms).
        assert LATENCY_BUCKETS_S[0] <= 0.001
        assert LATENCY_BUCKETS_S[-1] >= 1.0
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)


class TestEscapeLabel:
    @pytest.mark.parametrize(
        "raw, escaped",
        [
            ("plain", "plain"),
            ('with"quote', 'with\\"quote'),
            ("back\\slash", "back\\\\slash"),
            ("new\nline", "new\\nline"),
        ],
    )
    def test_escapes(self, raw, escaped):
        assert escape_label(raw) == escaped


class TestRenderPrometheus:
    def test_empty_payload_renders_all_families(self):
        text = render_prometheus({})
        for family in (
            "repro_serve_uptime_seconds",
            "repro_serve_requests_total",
            "repro_serve_errors_total",
            "repro_serve_tenants",
            "repro_serve_tenant_evictions_total",
            "repro_serve_latency_seconds",
        ):
            assert f"# TYPE {family}" in text
        assert text.endswith("\n")

    def test_histogram_exposition_units_are_seconds(self):
        hist = LatencyHistogram()
        hist.observe(0.002)
        payload = {
            "registry": {
                "tenants": {
                    "acme": {"latency": {"predict": hist.snapshot()}}
                }
            }
        }
        text = render_prometheus(payload)
        assert (
            'repro_serve_latency_seconds_bucket{tenant="acme",op="predict",'
            'le="0.0025"} 1' in text
        )
        assert (
            'repro_serve_latency_seconds_bucket{tenant="acme",op="predict",'
            'le="+Inf"} 1' in text
        )
        assert (
            'repro_serve_latency_seconds_sum{tenant="acme",op="predict"} '
            "0.002" in text
        )
        assert (
            'repro_serve_latency_seconds_count{tenant="acme",op="predict"} 1'
            in text
        )

    def test_tenants_and_endpoints_sorted(self):
        payload = {
            "server": {"requests": {"b": 1, "a": 2}},
            "registry": {
                "tenants": {"zeta": {}, "alpha": {}},
                "n_tenants": 2,
            },
        }
        text = render_prometheus(payload)
        assert text.index('endpoint="a"') < text.index('endpoint="b"')
        assert text.index('tenant="alpha"') < text.index('tenant="zeta"')

    def test_integral_floats_render_without_decimal(self):
        text = render_prometheus({"server": {"uptime_s": 12.0}})
        assert "repro_serve_uptime_seconds 12\n" in text
