"""Structured logging: JSON lines, context propagation, configuration.

The properties worth pinning: the library is silent unless configured,
``--log-json`` output is one parseable JSON object per line carrying
``extra=`` keys and the bound context fields, and the contextvars-based
context survives thread hand-offs (the serve executor relies on it).
"""

import io
import json
import logging
import threading

import pytest

from repro.obs.log import (
    CONTEXT_FIELDS,
    JsonFormatter,
    configure_logging,
    get_logger,
    log_context,
)


@pytest.fixture
def capture():
    """Configure JSON logging into a buffer; restore silence after."""
    buf = io.StringIO()
    configure_logging(level="debug", json_mode=True, stream=buf)
    yield buf
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.addHandler(logging.NullHandler())
    root.setLevel(logging.NOTSET)


def _records(buf) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestGetLogger:
    def test_prefixes_into_the_repro_namespace(self):
        assert get_logger("sim.runner").name == "repro.sim.runner"

    def test_already_namespaced_names_pass_through(self):
        assert get_logger("repro.serve").name == "repro.serve"
        assert get_logger("repro").name == "repro"

    def test_silent_by_default(self, capsys):
        # Without configure_logging the NullHandler swallows everything
        # and nothing propagates to the root logger's stderr handler.
        get_logger("sim.runner").warning("should not appear")
        captured = capsys.readouterr()
        assert "should not appear" not in captured.err
        assert "should not appear" not in captured.out


class TestJsonOutput:
    def test_one_json_object_per_line_with_base_fields(self, capture):
        log = get_logger("sim.runner")
        log.info("kernel run finished")
        log.warning("second line")
        records = _records(capture)
        assert len(records) == 2
        first = records[0]
        assert first["msg"] == "kernel run finished"
        assert first["level"] == "info"
        assert first["logger"] == "repro.sim.runner"
        assert isinstance(first["ts"], float)
        assert records[1]["level"] == "warning"

    def test_extra_fields_become_payload_keys(self, capture):
        get_logger("sim.runner").info(
            "shard finished", extra={"n_tasks": 1234, "n_failures": 5}
        )
        (record,) = _records(capture)
        assert record["n_tasks"] == 1234
        assert record["n_failures"] == 5

    def test_non_serializable_extras_are_stringified(self, capture):
        get_logger("x").info("obj", extra={"path": object()})
        (record,) = _records(capture)
        assert isinstance(record["path"], str)

    def test_exception_info_is_included(self, capture):
        log = get_logger("x")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            log.exception("failed")
        (record,) = _records(capture)
        assert record["level"] == "error"
        assert "RuntimeError: boom" in record["exc"]


class TestContext:
    def test_bound_fields_stamp_every_record(self, capture):
        with log_context(run_id="grid-17", shard=3):
            get_logger("sim.runner").info("inside")
        get_logger("sim.runner").info("outside")
        inside, outside = _records(capture)
        assert inside["run_id"] == "grid-17"
        assert inside["shard"] == 3
        assert "run_id" not in outside and "shard" not in outside

    def test_nested_contexts_merge_and_unwind(self, capture):
        log = get_logger("x")
        with log_context(run_id="r1"):
            with log_context(tenant="acme"):
                log.info("deep")
            log.info("shallow")
        deep, shallow = _records(capture)
        assert deep["run_id"] == "r1" and deep["tenant"] == "acme"
        assert shallow["run_id"] == "r1" and "tenant" not in shallow

    def test_explicit_extra_wins_over_context(self, capture):
        with log_context(shard=1):
            get_logger("x").info("msg", extra={"shard": 9})
        (record,) = _records(capture)
        assert record["shard"] == 9

    def test_context_is_isolated_per_thread(self, capture):
        # contextvars: a context bound in one thread must not leak into
        # records emitted concurrently from another.
        log = get_logger("x")
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with log_context(tenant="worker-tenant"):
                entered.set()
                release.wait(5.0)
                log.info("from worker")

        t = threading.Thread(target=worker)
        t.start()
        entered.wait(5.0)
        log.info("from main")
        release.set()
        t.join(5.0)
        by_msg = {r["msg"]: r for r in _records(capture)}
        assert "tenant" not in by_msg["from main"]
        assert by_msg["from worker"]["tenant"] == "worker-tenant"

    def test_declared_context_fields(self):
        assert CONTEXT_FIELDS == ("run_id", "tenant", "shard")


class TestConfigure:
    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(level="info", json_mode=True, stream=first)
        root = configure_logging(level="info", json_mode=True, stream=second)
        try:
            get_logger("x").info("only once")
            assert first.getvalue() == ""
            assert len(_records(second)) == 1
            assert len(root.handlers) == 1
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            root.addHandler(logging.NullHandler())
            root.setLevel(logging.NOTSET)

    def test_level_filters_below_threshold(self):
        buf = io.StringIO()
        root = configure_logging(level="warning", json_mode=True, stream=buf)
        try:
            get_logger("x").info("dropped")
            get_logger("x").warning("kept")
            records = _records(buf)
            assert [r["msg"] for r in records] == ["kept"]
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            root.addHandler(logging.NullHandler())
            root.setLevel(logging.NOTSET)

    def test_text_mode_renders_extras_as_suffix(self):
        buf = io.StringIO()
        root = configure_logging(level="info", json_mode=False, stream=buf)
        try:
            with log_context(shard=2):
                get_logger("sim.runner").info(
                    "shard finished", extra={"n_tasks": 10}
                )
            line = buf.getvalue().strip()
            assert "repro.sim.runner: shard finished" in line
            assert "n_tasks=10" in line and "shard=2" in line
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            root.addHandler(logging.NullHandler())
            root.setLevel(logging.NOTSET)

    def test_json_formatter_is_reusable_standalone(self):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "hello %s", ("world",), None
        )
        payload = json.loads(JsonFormatter().format(record))
        assert payload["msg"] == "hello world"
