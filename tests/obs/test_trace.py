"""Chrome trace export: schema validity, lanes, ring buffer, file write.

The contract under test is the Chrome ``trace_event`` format itself —
every emitted event must carry the fields the Perfetto / about:tracing
loaders require for its phase type — plus the collector's own
guarantees: one occupancy lane per concurrent attempt, metadata exempt
from ring-buffer eviction, and outage spans pinned to lane 0.

Integration runs go through the public seam (``trace_path=`` on
:class:`OnlineSimulator`) and assert on the written file; the
collector's in-memory bookkeeping is covered unit-style with fake
kernel states.
"""

import json
from types import SimpleNamespace

import pytest

from repro.experiments.factories import method_factories
from repro.obs.trace import CLUSTER_PID, OUTAGE_TID, US_PER_HOUR, TraceCollector
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

#: Required keys per Chrome trace phase type.
_REQUIRED = {
    "X": {"name", "cat", "ph", "ts", "dur", "pid", "tid"},
    "i": {"name", "cat", "ph", "ts", "pid", "tid", "s"},
    "C": {"name", "ph", "ts", "pid", "args"},
    "M": {"name", "ph", "pid", "args"},
}


def _run_with_trace(path, limit=None, node_outage=None):
    """Run the kill-heavy flat scenario with tracing to ``path``."""
    trace = build_workflow_trace("iwd", seed=3, scale=0.05)
    backend_kwargs = dict(arrival="poisson:600", seed=7)
    if node_outage is not None:
        backend_kwargs["node_outage"] = node_outage
    backend = EventDrivenBackend(**backend_kwargs)
    sim = OnlineSimulator(
        trace,
        backend=backend,
        time_to_failure=0.7,
        cluster="4g:2",
        trace_path=str(path),
        trace_limit=limit,
    )
    result = sim.run(method_factories()["Witt-Percentile"]())
    events = json.loads(path.read_text())["traceEvents"]
    return result, events


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    return _run_with_trace(path)


class TestSchema:
    def test_every_event_is_well_formed(self, traced):
        _, events = traced
        assert events, "run produced no trace events"
        for event in events:
            required = _REQUIRED.get(event["ph"])
            assert required is not None, f"unknown phase {event['ph']!r}"
            missing = required - set(event)
            assert not missing, f"{event['ph']} event missing {missing}"
            if "ts" in event:
                assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_metadata_first_and_names_every_process(self, traced):
        _, events = traced
        meta = [e for e in events if e["ph"] == "M"]
        # Metadata leads the stream so viewers name tracks up front.
        assert events[: len(meta)] == meta
        named = {e["pid"]: e["args"]["name"] for e in meta}
        assert named[CLUSTER_PID] == "cluster"
        used_pids = {
            e["pid"] for e in events if e["ph"] != "M" and e["pid"] != CLUSTER_PID
        }
        assert used_pids <= set(named)

    def test_span_categories_and_counter_track(self, traced):
        result, events = traced
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["cat"] for e in spans} <= {
            "success",
            "kill",
            "preempt",
            "outage",
        }
        n_success = sum(e["cat"] == "success" for e in spans)
        assert n_success == result.num_tasks
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all(e["pid"] == CLUSTER_PID for e in counters)
        assert all(e["args"]["tasks"] >= 0 for e in counters)

    def test_kills_emit_instant_markers(self, traced):
        result, events = traced
        assert result.num_failures > 0, "scenario must produce kills"
        kills = [e for e in events if e["ph"] == "i" and e["cat"] == "kill"]
        assert len(kills) == result.num_failures
        for kill in kills:
            assert kill["args"]["allocated_mb"] < kill["args"]["peak_memory_mb"]

    def test_outage_spans_land_on_lane_zero(self, tmp_path):
        _, events = _run_with_trace(
            tmp_path / "trace.json", node_outage="0.005:0.02:0"
        )
        outages = [e for e in events if e.get("cat") == "outage"]
        assert outages, "outage scenario produced no outage span"
        for span in outages:
            assert span["tid"] == OUTAGE_TID
            assert span["dur"] == pytest.approx(0.02 * US_PER_HOUR)


class TestLanes:
    def test_occupancy_spans_never_overlap_within_a_lane(self, traced):
        _, events = traced
        lanes: dict[tuple, list] = {}
        for e in events:
            if e["ph"] == "X" and e.get("cat") != "outage":
                lanes.setdefault((e["pid"], e["tid"]), []).append(
                    (e["ts"], e["ts"] + e["dur"])
                )
        assert lanes
        for (pid, tid), spans in lanes.items():
            assert tid != OUTAGE_TID, "task span on the outage lane"
            spans.sort()
            for (_, prev_end), (start, _) in zip(spans, spans[1:]):
                assert start >= prev_end - 1e-6, (
                    f"overlapping spans on pid={pid} tid={tid}"
                )

    def test_lanes_are_recycled(self, traced):
        # Lane numbers stay small: released lanes are reused (min-heap),
        # so the lane count tracks peak concurrency, not task count.
        _, events = traced
        task_spans = [
            e for e in events if e["ph"] == "X" and e.get("cat") != "outage"
        ]
        max_tid = max(e["tid"] for e in task_spans)
        assert len(task_spans) > max_tid * 3


class TestRingBuffer:
    def test_limit_bounds_events_but_not_metadata(self, traced, tmp_path):
        _, all_events = traced
        full = [e for e in all_events if e["ph"] != "M"]
        limit = 50
        assert len(full) > limit
        _, events = _run_with_trace(tmp_path / "trace.json", limit=limit)
        kept = [e for e in events if e["ph"] != "M"]
        assert len(kept) == limit
        # Eviction drops the *oldest* events; metadata survives in full.
        assert kept == full[-limit:]
        assert [e for e in events if e["ph"] == "M"] == [
            e for e in all_events if e["ph"] == "M"
        ]

    @pytest.mark.parametrize("limit", [0, -1])
    def test_non_positive_limit_rejected(self, limit):
        with pytest.raises(ValueError, match="trace limit"):
            TraceCollector(limit=limit)


# ----------------------------------------------------------------------
# unit-level: lane bookkeeping with fake kernel states
# ----------------------------------------------------------------------
def _state(iid: int, attempt: int = 1) -> SimpleNamespace:
    inst = SimpleNamespace(
        instance_id=iid,
        task_type=SimpleNamespace(name="task"),
        peak_memory_mb=100.0,
    )
    return SimpleNamespace(inst=inst, attempt=attempt, running=(0, 0.0, 2048.0))


_NODE = SimpleNamespace(node_id=0)


class TestUnitLanes:
    def test_concurrent_states_get_distinct_lanes_and_recycle(self):
        collector = TraceCollector()
        a, b, c = _state(1), _state(2), _state(3)
        collector.on_dispatch(a, 0.0, _NODE, 0.0)
        collector.on_dispatch(b, 0.0, _NODE, 0.0)
        assert collector._lane_of[id(a)] == (0, OUTAGE_TID + 1)
        assert collector._lane_of[id(b)] == (0, OUTAGE_TID + 2)
        collector.on_release(a, 1.0, _NODE, 2048.0, 1.0)
        collector.on_task_success(a, 1.0, 2048.0)
        # The freed lane (the lowest) is reused before a new one opens.
        collector.on_dispatch(c, 1.0, _NODE, 0.0)
        assert collector._lane_of[id(c)] == (0, OUTAGE_TID + 1)

    def test_release_then_outcome_emits_one_categorized_span(self):
        collector = TraceCollector()
        s = _state(1)
        collector.on_dispatch(s, 0.0, _NODE, 0.0)
        collector.on_release(s, 2.0, _NODE, 2048.0, 2.0)
        collector.on_task_success(s, 2.0, 2048.0)
        (span,) = [e for e in collector.trace_events() if e["ph"] == "X"]
        assert span["cat"] == "success"
        assert span["ts"] == pytest.approx(0.0)
        assert span["dur"] == pytest.approx(2.0 * US_PER_HOUR)

    def test_retry_dispatch_emits_resize_instant(self):
        collector = TraceCollector()
        s = _state(1, attempt=2)
        collector.on_dispatch(s, 0.5, _NODE, 0.0)
        (resize,) = [
            e for e in collector.trace_events() if e.get("cat") == "resize"
        ]
        assert resize["ph"] == "i"
        assert resize["args"]["attempt"] == 2
        assert resize["args"]["allocated_mb"] == pytest.approx(2048.0)

    def test_no_path_keeps_events_in_memory_only(self, tmp_path):
        collector = TraceCollector()
        s = _state(1)
        collector.on_dispatch(s, 0.0, _NODE, 0.0)
        collector.on_release(s, 1.0, _NODE, 2048.0, 1.0)
        collector.on_task_success(s, 1.0, 2048.0)
        collector.contribute(result=None)  # no path: must not write
        assert collector.path is None
        assert not list(tmp_path.iterdir())
        assert collector.trace_events()
