"""Kernel phase profiler: timer semantics and measurement-only guarantee.

The load-bearing property is *measurement-only*: enabling the profiler
(and the trace collector) must leave every simulation output identical
to the last bit.  That is pinned two ways — against the committed
golden files (the same scenarios the engine-regression suite pins,
re-run with ``profile=True``), and pairwise profile-off vs profile-on
across the structurally different kernel modes.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.experiments.factories import method_factories
from repro.obs.profile import (
    PHASE_ORDER,
    KernelProfile,
    PhaseStat,
    PhaseTimer,
    profile_to_dict,
)
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.results import result_to_dict
from repro.workflow.nfcore import build_workflow_trace

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


class TestPhaseTimer:
    def test_laps_tile_the_region(self):
        clock = _FakeClock()
        profile = KernelProfile()
        timer = PhaseTimer(profile, clock=clock)
        timer.start()
        clock.advance(1.0)
        timer.lap("size")
        clock.advance(2.0)
        timer.lap("place")
        clock.advance(0.5)
        timer.lap("size")
        timer.stop()
        assert profile.phases["size"].calls == 2
        assert profile.phases["size"].seconds == pytest.approx(1.5)
        assert profile.phases["place"].seconds == pytest.approx(2.0)
        assert profile.wall_seconds == pytest.approx(3.5)
        assert profile.total_phase_seconds == pytest.approx(3.5)

    def test_stop_start_resumes_without_charging_the_gap(self):
        clock = _FakeClock()
        profile = KernelProfile()
        timer = PhaseTimer(profile, clock=clock)
        timer.start()
        clock.advance(1.0)
        timer.lap("heap")
        timer.stop()
        clock.advance(100.0)  # downtime between slices
        timer.start()
        clock.advance(1.0)
        timer.lap("heap")
        timer.stop()
        assert profile.phases["heap"].seconds == pytest.approx(2.0)
        assert profile.wall_seconds == pytest.approx(2.0)

    def test_pickle_drops_inflight_lap_origin(self):
        clock = _FakeClock()
        profile = KernelProfile()
        timer = PhaseTimer(profile, clock=clock)
        timer.start()
        clock.advance(1.0)
        timer.lap("heap")
        restored = pickle.loads(pickle.dumps(timer))
        assert restored.profile.phases["heap"].calls == 1
        assert restored._last is None and restored._run_started is None
        # A resumed lap only counts the call, never the downtime: the
        # pre-pickle 1.0s charge survives, the resumed lap adds nothing.
        restored.lap("heap")
        assert restored.profile.phases["heap"].calls == 2
        assert restored.profile.phases["heap"].seconds == pytest.approx(1.0)


class TestKernelProfile:
    def test_merge_sums_everything(self):
        a = KernelProfile(
            phases={"heap": PhaseStat(2, 1.0)}, n_events=10, wall_seconds=2.0
        )
        b = KernelProfile(
            phases={"heap": PhaseStat(1, 0.5), "size": PhaseStat(3, 0.25)},
            n_events=5,
            wall_seconds=1.0,
        )
        a.merge(b)
        assert a.phases["heap"].calls == 3
        assert a.phases["heap"].seconds == pytest.approx(1.5)
        assert a.phases["size"].calls == 3
        assert a.n_events == 15
        assert a.wall_seconds == pytest.approx(3.0)
        assert a.n_runs == 2
        assert a.events_per_sec == pytest.approx(5.0)

    def test_sorted_phases_follow_canonical_order(self):
        profile = KernelProfile()
        for name in ("finalize", "zeta", "seed", "collect", "alpha"):
            profile.stat(name)
        names = [name for name, _ in profile.sorted_phases()]
        assert names == ["seed", "collect", "finalize", "alpha", "zeta"]

    def test_to_dict_shape(self):
        profile = KernelProfile(
            phases={"heap": PhaseStat(2, 0.5)}, n_events=4, wall_seconds=1.0
        )
        d = profile_to_dict(profile)
        assert d["phases"] == {"heap": {"calls": 2, "seconds": 0.5}}
        assert d["n_events"] == 4
        assert d["events_per_sec"] == pytest.approx(4.0)
        json.dumps(d)  # must be JSON-clean

    def test_render_rows_share_of_wall(self):
        profile = KernelProfile(
            phases={"heap": PhaseStat(1, 0.25)}, n_events=1, wall_seconds=1.0
        )
        (row,) = profile.render_rows()
        assert row["share"] == pytest.approx(0.25)


def _run(workflow_kwargs, backend_kwargs, sim_kwargs, method="Witt-Percentile"):
    trace = build_workflow_trace(**workflow_kwargs)
    backend = EventDrivenBackend(**backend_kwargs)
    sim = OnlineSimulator(trace, backend=backend, **sim_kwargs)
    return sim.run(method_factories()[method]())


#: Structurally different kernel modes, all small enough to stay fast:
#: pure flat contention with kills, flat with a node drain (preemption
#: + outage events), and DAG scheduling with multi-workflow arrivals.
#: The ``*-firstfit`` variants run the default first-fit policy with no
#: drains — the branch the kernel inlines (placement-failure cache and
#: all) instead of calling ``ResourceManager.try_place``, so the
#: pairwise profiled-twin pin covers both placement code paths.
MODES = {
    "flat-kills": dict(
        workflow_kwargs=dict(name="iwd", seed=3, scale=0.05),
        backend_kwargs=dict(arrival="poisson:600", seed=7),
        sim_kwargs=dict(
            time_to_failure=0.7, cluster="4g:1,6g:1", placement="best-fit"
        ),
    ),
    "flat-firstfit": dict(
        workflow_kwargs=dict(name="iwd", seed=3, scale=0.05),
        backend_kwargs=dict(arrival="poisson:600", seed=7),
        sim_kwargs=dict(time_to_failure=0.7, cluster="4g:1,6g:1"),
    ),
    "dag-firstfit": dict(
        workflow_kwargs=dict(name="iwd", seed=3, scale=0.05),
        backend_kwargs=dict(
            dag="trace", workflow_arrival="3@poisson:8@tenants:2", seed=11
        ),
        sim_kwargs=dict(time_to_failure=0.7, cluster="4g:1,6g:1"),
    ),
    "flat-outage": dict(
        workflow_kwargs=dict(name="iwd", seed=3, scale=0.05),
        backend_kwargs=dict(
            arrival="poisson:600", seed=7, node_outage="0.005:0.02:0"
        ),
        sim_kwargs=dict(time_to_failure=0.7, cluster="4g:2"),
    ),
    "dag": dict(
        workflow_kwargs=dict(name="iwd", seed=3, scale=0.05),
        backend_kwargs=dict(
            dag="trace", workflow_arrival="3@poisson:8@tenants:2", seed=11
        ),
        sim_kwargs=dict(
            time_to_failure=0.7, cluster="4g:1,6g:1", placement="best-fit"
        ),
    ),
}


@pytest.mark.parametrize("mode", sorted(MODES))
def test_profiling_is_bit_for_bit_invisible(mode, tmp_path):
    spec = MODES[mode]
    base = _run(**spec)
    profiled_kwargs = dict(spec)
    profiled_kwargs["sim_kwargs"] = dict(
        spec["sim_kwargs"],
        profile=True,
        trace_path=str(tmp_path / "trace.json"),
    )
    profiled = _run(**profiled_kwargs)
    assert result_to_dict(base) == result_to_dict(profiled)
    assert base.profile is None
    profile = profiled.profile
    assert profile is not None
    assert profile.n_events > 0
    # The laps must tile the instrumented region: >= 95% of wall.
    assert profile.total_phase_seconds >= 0.95 * profile.wall_seconds
    # And never exceed it (beyond float noise).
    assert profile.total_phase_seconds <= profile.wall_seconds * 1.001
    assert set(profile.phases) <= set(PHASE_ORDER)


@pytest.mark.parametrize(
    "name", ["flat_event_pr2", "dag_engine_pr3", "dag_engine_linear"]
)
def test_profiling_preserves_committed_goldens(name):
    """Profile-on runs must reproduce the committed golden outputs."""
    import importlib.util

    golden_module = (
        Path(__file__).resolve().parent.parent
        / "sim"
        / "test_golden_regression.py"
    )
    module_spec = importlib.util.spec_from_file_location(
        "golden_scenarios", golden_module
    )
    mod = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(mod)
    spec = mod.SCENARIOS[name]
    trace = build_workflow_trace(
        spec["workflow"], seed=spec["trace_seed"], scale=spec["scale"]
    )
    backend = EventDrivenBackend(**spec["backend"])
    sim = OnlineSimulator(
        trace, backend=backend, profile=True, **spec["sim"]
    )
    result = sim.run(method_factories()[spec["method"]]())
    actual = json.loads(json.dumps(result_to_dict(result)))
    expected = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    assert actual == expected, f"profiling changed golden output for {name}"
    assert result.profile is not None


def test_kill_and_outage_phases_are_charged():
    spec = MODES["flat-outage"]
    kwargs = dict(spec)
    kwargs["sim_kwargs"] = dict(spec["sim_kwargs"], profile=True)
    result = _run(**kwargs)
    profile = result.profile
    assert profile.phases["kill"].calls > 0
    assert profile.phases["outage"].calls > 0
    assert profile.phases["success"].calls > 0


def test_sharded_profiles_merge():
    from repro.sim.runner import run_sharded

    factory = method_factories()["Witt-Percentile"]
    trace = build_workflow_trace("iwd", seed=3, scale=0.05)
    res = run_sharded(
        trace,
        factory,
        shards=2,
        backend="event",
        cluster="4g:2",
        n_workers=1,
        profile=True,
    )
    assert res.profile is not None
    assert res.profile.n_runs == 2
    plain = run_sharded(
        trace, factory, shards=2, backend="event", cluster="4g:2", n_workers=1
    )
    assert plain.profile is None


def test_checkpoint_resume_keeps_profiling(tmp_path):
    """A profiled run paused and resumed still tiles its wall time."""
    from repro.sim.kernel.checkpoint import drive_kernel, load_checkpoint

    spec = MODES["flat-kills"]
    trace = build_workflow_trace(**spec["workflow_kwargs"])
    backend = EventDrivenBackend(
        **spec["backend_kwargs"]
    ).with_obs_options(profile=True)
    predictor = method_factories()["Witt-Percentile"]()
    sim = OnlineSimulator(trace, backend=backend, **spec["sim_kwargs"])
    ckpt = str(tmp_path / "state.ckpt")
    paused = sim.run(predictor, checkpoint=ckpt, stop_after=0.002)
    assert paused is None
    kernel = load_checkpoint(ckpt)
    result = drive_kernel(kernel)
    assert result is not None and result.profile is not None
    profile = result.profile
    assert profile.total_phase_seconds >= 0.95 * profile.wall_seconds
