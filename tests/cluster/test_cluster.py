"""Tests for machines, the resource manager, and wastage accounting."""

import pytest

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import EPYC_7282_128G, Machine, MachineConfig
from repro.cluster.manager import ResourceManager


class TestMachine:
    def test_paper_node_config(self):
        assert EPYC_7282_128G.memory_mb == 128 * 1024
        assert EPYC_7282_128G.cores == 32

    def test_config_validation(self):
        with pytest.raises(ValueError, match="memory_mb"):
            MachineConfig("x", memory_mb=0.0)
        with pytest.raises(ValueError, match="cores"):
            MachineConfig("x", memory_mb=1.0, cores=0)

    def test_allocate_release_cycle(self):
        m = Machine(config=MachineConfig("t", 1000.0))
        m.allocate(1, 600.0)
        assert m.free_mb == pytest.approx(400.0)
        assert m.release(1) == 600.0
        assert m.free_mb == pytest.approx(1000.0)

    def test_over_capacity_rejected(self):
        m = Machine(config=MachineConfig("t", 1000.0))
        with pytest.raises(MemoryError, match="cannot fit"):
            m.allocate(1, 1500.0)

    def test_double_allocate_same_task(self):
        m = Machine(config=MachineConfig("t", 1000.0))
        m.allocate(1, 100.0)
        with pytest.raises(ValueError, match="already running"):
            m.allocate(1, 100.0)

    def test_release_unknown_task(self):
        m = Machine(config=MachineConfig("t", 1000.0))
        with pytest.raises(KeyError):
            m.release(9)

    def test_nonpositive_allocation(self):
        m = Machine(config=MachineConfig("t", 1000.0))
        with pytest.raises(ValueError, match="positive"):
            m.allocate(1, 0.0)


class TestResourceManager:
    def test_clamp_allocation(self):
        rm = ResourceManager()
        assert rm.clamp_allocation(1e9) == rm.max_allocation_mb
        assert rm.clamp_allocation(-5.0) == 1.0
        assert rm.clamp_allocation(512.0) == 512.0

    def test_success_iff_allocation_covers_peak(self):
        rm = ResourceManager()
        ok = rm.execute_attempt(
            allocated_mb=1000.0, true_peak_mb=900.0, runtime_hours=1.0
        )
        assert ok.success and ok.occupied_hours == 1.0
        bad = rm.execute_attempt(
            allocated_mb=800.0, true_peak_mb=900.0, runtime_hours=1.0
        )
        assert not bad.success

    def test_time_to_failure_scales_occupancy(self):
        rm = ResourceManager()
        v = rm.execute_attempt(
            allocated_mb=100.0,
            true_peak_mb=200.0,
            runtime_hours=2.0,
            time_to_failure=0.5,
        )
        assert v.occupied_hours == pytest.approx(1.0)

    def test_invalid_ttf(self):
        rm = ResourceManager()
        with pytest.raises(ValueError, match="time_to_failure"):
            rm.execute_attempt(
                allocated_mb=1.0,
                true_peak_mb=2.0,
                runtime_hours=1.0,
                time_to_failure=0.0,
            )

    def test_nodes_freed_after_attempts(self):
        rm = ResourceManager(n_nodes=2)
        for _ in range(10):
            rm.execute_attempt(
                allocated_mb=rm.max_allocation_mb,
                true_peak_mb=1.0,
                runtime_hours=0.1,
            )
        assert all(n.allocated_mb == 0.0 for n in rm.nodes)

    def test_invalid_n_nodes(self):
        with pytest.raises(ValueError, match="n_nodes"):
            ResourceManager(n_nodes=0)


class TestWastageLedger:
    def kwargs(self, **over):
        base = dict(
            task_type="t",
            workflow="w",
            instance_id=0,
            attempt=1,
            allocated_mb=2048.0,
            peak_memory_mb=1024.0,
        )
        base.update(over)
        return base

    def test_success_wastage_formula(self):
        led = WastageLedger()
        out = led.record_success(**self.kwargs(), runtime_hours=2.0)
        # (2048 - 1024) MB = 1 GB over 2 h -> 2 GBh
        assert out.wastage_gbh == pytest.approx(2.0)
        assert led.total_wastage_gbh == pytest.approx(2.0)
        assert led.total_runtime_hours == pytest.approx(2.0)

    def test_failure_wastage_formula(self):
        led = WastageLedger()
        out = led.record_failure(
            task_type="t",
            workflow="w",
            instance_id=0,
            attempt=1,
            allocated_mb=1024.0,
            peak_memory_mb=2048.0,
            time_to_failure_hours=0.5,
        )
        # whole 1 GB allocation wasted for 0.5 h
        assert out.wastage_gbh == pytest.approx(0.5)
        assert led.num_failures == 1

    def test_success_requires_coverage(self):
        led = WastageLedger()
        with pytest.raises(ValueError, match="allocated < peak"):
            led.record_success(
                **self.kwargs(allocated_mb=100.0, peak_memory_mb=200.0),
                runtime_hours=1.0,
            )

    def test_failure_requires_underallocation(self):
        led = WastageLedger()
        with pytest.raises(ValueError, match="allocated < peak"):
            led.record_failure(
                task_type="t",
                workflow="w",
                instance_id=0,
                attempt=1,
                allocated_mb=300.0,
                peak_memory_mb=200.0,
                time_to_failure_hours=1.0,
            )

    def test_per_type_aggregation(self):
        led = WastageLedger()
        led.record_success(**self.kwargs(task_type="a"), runtime_hours=1.0)
        led.record_success(**self.kwargs(task_type="b"), runtime_hours=2.0)
        by_type = led.wastage_by_task_type()
        assert by_type["a"] == pytest.approx(1.0)
        assert by_type["b"] == pytest.approx(2.0)

    def test_merge(self):
        a = WastageLedger()
        a.record_success(**self.kwargs(), runtime_hours=1.0)
        b = WastageLedger()
        b.record_failure(
            task_type="t",
            workflow="w",
            instance_id=1,
            attempt=1,
            allocated_mb=512.0,
            peak_memory_mb=1024.0,
            time_to_failure_hours=1.0,
        )
        a.merge(b)
        assert a.num_failures == 1
        assert len(a.outcomes) == 2
        assert a.total_wastage_gbh == pytest.approx(1.0 + 0.5)

    def test_over_allocation_property(self):
        led = WastageLedger()
        out = led.record_success(**self.kwargs(), runtime_hours=1.0)
        assert out.over_allocation_mb == pytest.approx(1024.0)
