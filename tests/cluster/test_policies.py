"""Tests for cluster specs, heterogeneous pools, and placement policies."""

import pytest

from repro.cluster.machine import (
    Machine,
    MachineConfig,
    parse_cluster_spec,
    parse_memory_mb,
)
from repro.cluster.manager import ResourceManager
from repro.cluster.policies import (
    BestFit,
    FirstFit,
    WorstFit,
    placement_names,
    register_placement,
    resolve_placement,
)


def make_nodes(*free_mbs, capacity=10_000.0):
    """Nodes with the given free memory (by pre-allocating the rest)."""
    nodes = []
    for i, free in enumerate(free_mbs):
        node = Machine(config=MachineConfig("t", capacity), node_id=i)
        used = capacity - free
        if used > 0:
            node.allocate(1000 + i, used)
        nodes.append(node)
    return nodes


class TestParseMemory:
    def test_gigabytes(self):
        assert parse_memory_mb("128g") == 128 * 1024
        assert parse_memory_mb("1.5G") == pytest.approx(1536.0)
        assert parse_memory_mb("2gb") == 2048.0

    def test_megabytes_and_bare(self):
        assert parse_memory_mb("512m") == 512.0
        assert parse_memory_mb("512MB") == 512.0
        assert parse_memory_mb("768") == 768.0

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_memory_mb("lots")
        with pytest.raises(ValueError, match="positive"):
            parse_memory_mb("0g")
        with pytest.raises(ValueError, match="empty"):
            parse_memory_mb("  ")


class TestParseClusterSpec:
    def test_paper_default_shape(self):
        pools = parse_cluster_spec("128g:8")
        assert len(pools) == 1
        config, count = pools[0]
        assert config.memory_mb == 128 * 1024
        assert count == 8

    def test_heterogeneous_pools(self):
        pools = parse_cluster_spec("128g:4,256g:4")
        assert [(c.memory_mb, n) for c, n in pools] == [
            (128 * 1024, 4),
            (256 * 1024, 4),
        ]

    def test_count_defaults_to_one(self):
        pools = parse_cluster_spec("512g")
        assert pools[0][1] == 1

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="count"):
            parse_cluster_spec("128g:0")
        with pytest.raises(ValueError, match="count"):
            parse_cluster_spec("128g:x")
        with pytest.raises(ValueError, match="empty"):
            parse_cluster_spec("128g:2,,64g:1")


class TestHeterogeneousManager:
    def test_from_spec_builds_pools_in_order(self):
        rm = ResourceManager.from_spec("128g:2,256g:2")
        assert [n.config.memory_mb for n in rm.nodes] == [
            128 * 1024, 128 * 1024, 256 * 1024, 256 * 1024
        ]
        assert [n.node_id for n in rm.nodes] == [0, 1, 2, 3]
        assert rm.is_heterogeneous

    def test_single_config_signature_still_works(self):
        rm = ResourceManager(n_nodes=3)
        assert len(rm.nodes) == 3
        assert not rm.is_heterogeneous
        assert rm.max_allocation_mb == 128 * 1024

    def test_max_allocation_is_largest_node(self):
        rm = ResourceManager.from_spec("64g:2,256g:1")
        assert rm.max_allocation_mb == 256 * 1024
        # Clamping caps at the largest node, not the first pool.
        assert rm.clamp_allocation(1e9) == 256 * 1024

    def test_node_capacities(self):
        rm = ResourceManager.from_spec("64g:1,128g:1")
        assert rm.node_capacities_mb() == {0: 64 * 1024, 1: 128 * 1024}

    def test_big_task_lands_on_big_node(self):
        rm = ResourceManager.from_spec("64g:2,256g:1")
        node = rm.place(100 * 1024)  # fits only the 256g node
        assert node.config.memory_mb == 256 * 1024

    def test_rejects_nonpositive_pool_count(self):
        with pytest.raises(ValueError, match="pool count"):
            ResourceManager(pools=[(MachineConfig("t", 1024.0), 0)])

    def test_execute_attempt_on_hetero_cluster(self):
        rm = ResourceManager.from_spec("1g:1,4g:1")
        verdict = rm.execute_attempt(
            allocated_mb=2048.0, true_peak_mb=2000.0, runtime_hours=1.0
        )
        assert verdict.success
        assert verdict.node_id == 1  # only the 4g node fits 2 GB


class TestPlacementPolicies:
    def test_first_fit_takes_lowest_id(self):
        nodes = make_nodes(5000.0, 9000.0, 2000.0)
        assert FirstFit().select(nodes, 1500.0).node_id == 0

    def test_best_fit_takes_tightest(self):
        nodes = make_nodes(5000.0, 9000.0, 2000.0)
        assert BestFit().select(nodes, 1500.0).node_id == 2

    def test_worst_fit_takes_roomiest(self):
        nodes = make_nodes(5000.0, 9000.0, 2000.0)
        assert WorstFit().select(nodes, 1500.0).node_id == 1

    def test_ties_break_by_node_id(self):
        nodes = make_nodes(4000.0, 4000.0)
        assert BestFit().select(nodes, 1000.0).node_id == 0
        assert WorstFit().select(nodes, 1000.0).node_id == 0

    def test_none_when_nothing_fits(self):
        nodes = make_nodes(500.0, 700.0)
        for policy in (FirstFit(), BestFit(), WorstFit()):
            assert policy.select(nodes, 1000.0) is None

    def test_registry_names(self):
        assert set(placement_names()) >= {
            "first-fit", "best-fit", "worst-fit"
        }

    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_placement("best-fit"), BestFit)
        policy = WorstFit()
        assert resolve_placement(policy) is policy

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown placement"):
            resolve_placement("psychic-fit")
        with pytest.raises(TypeError, match="PlacementPolicy"):
            resolve_placement(42)

    def test_custom_policy_registration(self):
        class LastFit:
            name = "last-fit"

            def select(self, nodes, memory_mb):
                for node in reversed(nodes):
                    if node.can_fit(memory_mb):
                        return node
                return None

        register_placement("last-fit", LastFit)
        try:
            rm = ResourceManager(n_nodes=3, placement="last-fit")
            assert rm.try_place(1.0).node_id == 2
        finally:
            from repro.cluster import policies

            policies._REGISTRY.pop("last-fit", None)

    def test_manager_try_place_uses_policy(self):
        rm = ResourceManager.from_spec(
            "10g:1,20g:1", placement="worst-fit"
        )
        assert rm.try_place(1024.0).node_id == 1
        # Per-call override wins over the configured policy.
        assert rm.try_place(1024.0, policy=BestFit()).node_id == 0
