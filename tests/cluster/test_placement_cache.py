"""Placement-failure cache: invalidation exactness.

The kernel caches a failed placement scan as a certificate
``(generation, min_failed_mb, exclude)`` and short-circuits every
later probe the certificate covers.  That is only sound if the
generation bumps on *every* transition where free capacity can grow —
release (success or kill), outage start/end, drain, reset.  These
tests pin the bump sites and the certificate semantics, and a
randomized sequence checks the cached scan never disagrees with an
uncached ground-truth scan (a stale cache must never skip a feasible
placement).
"""

import random

import pytest

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.cluster.policies import FirstFit
from repro.experiments.factories import method_factories
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

GB = 1024.0


def _manager(n_nodes=2, memory_gb=4.0, **kwargs):
    cfg = MachineConfig(name="test", memory_mb=memory_gb * GB)
    return ResourceManager(cfg, n_nodes=n_nodes, **kwargs)


class _CountingFirstFit(FirstFit):
    """First-fit that counts scans, to observe cache short-circuits."""

    def __init__(self):
        self.calls = 0

    def select(self, nodes, memory_mb):
        self.calls += 1
        return super().select(nodes, memory_mb)


class TestFailureCertificate:
    def test_miss_caches_and_short_circuits_larger_probes(self):
        mgr = _manager(n_nodes=1, memory_gb=4.0)
        assert mgr.try_place(5 * GB) is None
        assert mgr._fail_gen == mgr.generation
        assert mgr._fail_mb == 5 * GB
        # Anything >= the cached size short-circuits at this generation.
        assert mgr.try_place(5 * GB) is None
        assert mgr.try_place(6 * GB) is None
        # A smaller request is *not* covered and must scan (and fit).
        assert mgr.try_place(3 * GB) is not None

    def test_policy_override_bypasses_cache(self):
        mgr = _manager(n_nodes=1, memory_gb=4.0)
        assert mgr.try_place(5 * GB) is None
        counting = _CountingFirstFit()
        assert mgr.try_place(5 * GB, policy=counting) is None
        assert counting.calls == 1  # scanned despite the cached miss

    def test_invalidate_placement_voids_the_cache(self):
        mgr = _manager(n_nodes=1, memory_gb=4.0)
        node = mgr.try_place(3 * GB)
        node.allocate(mgr.next_task_id(), 3 * GB)
        assert mgr.try_place(2 * GB) is None
        # Release capacity the way the kernel does: free, then bump.
        node.running.clear()
        node.allocated_mb = 0.0
        mgr.invalidate_placement()
        assert mgr.try_place(2 * GB) is not None

    def test_release_all_bumps_generation(self):
        mgr = _manager()
        before = mgr.generation
        mgr.release_all()
        assert mgr.generation == before + 1

    def test_exclude_superset_hits_subset_misses(self):
        mgr = _manager(n_nodes=2, memory_gb=4.0)
        # Fail with node 0 hidden: certificate covers {1} only... i.e.
        # "no node outside {0} fits 3G".
        node = mgr.nodes[1]
        node.allocate(mgr.next_task_id(), 3.5 * GB)
        assert mgr.try_place(3 * GB, exclude={0}) is None
        # Probing with a *larger* exclude set scans fewer nodes: hit.
        assert mgr.try_place(3 * GB, exclude={0, 1}) is None
        # Probing with a smaller exclude set sees node 0 again: must
        # rescan, and node 0 fits.
        assert mgr.try_place(3 * GB) is mgr.nodes[0]

    def test_empty_exclude_certificate_covers_every_probe(self):
        mgr = _manager(n_nodes=2, memory_gb=4.0)
        for node in mgr.nodes:
            node.allocate(mgr.next_task_id(), 3.5 * GB)
        assert mgr.try_place(1 * GB) is None  # cache: nothing fits 1G
        # The no-exclude certificate covers probes with any exclude set.
        assert mgr.try_place(1 * GB, exclude={0}) is None
        assert mgr.try_place(2 * GB, exclude={0, 1}) is None


def test_randomized_cache_never_disagrees_with_uncached_scan():
    """A cached ``try_place`` must equal a fresh ground-truth scan.

    Random walk over allocate / release / drain transitions, with the
    kernel's bump discipline (bump on anything that grows capacity).
    Before every probe the expected answer is computed by an uncached
    first-fit scan over the live node list; any divergence means a
    stale certificate skipped a feasible placement (or invented one).
    """
    rng = random.Random(42)
    mgr = _manager(n_nodes=3, memory_gb=4.0)
    ground_truth = FirstFit()
    live: list[tuple] = []  # (node, task_id)
    drained: set[int] = set()
    for _ in range(2000):
        action = rng.random()
        if action < 0.55:
            request = rng.uniform(0.1, 5.0) * GB
            exclude = drained or None
            visible = [n for n in mgr.nodes if n.node_id not in drained]
            expected = ground_truth.select(visible, request)
            got = mgr.try_place(request, exclude=exclude)
            assert got is expected, (
                f"cache diverged: expected {expected}, got {got} "
                f"for {request / GB:.2f}G exclude={drained}"
            )
            if got is not None:
                task_id = mgr.next_task_id()
                got.allocate(task_id, request)
                live.append((got, task_id))
        elif action < 0.8 and live:
            node, task_id = live.pop(rng.randrange(len(live)))
            node.release(task_id)
            mgr.invalidate_placement()
        elif action < 0.9:
            # Outage start: capacity shrank for placement purposes, but
            # the kernel still bumps (exclude-scoped certificates).
            drained.add(rng.randrange(3))
            mgr.invalidate_placement()
        elif drained:
            drained.remove(rng.choice(sorted(drained)))
            mgr.invalidate_placement()


def _generation_after(backend_kwargs, sim_kwargs, method="Witt-Percentile"):
    trace = build_workflow_trace("iwd", seed=3, scale=0.05)
    backend = EventDrivenBackend(**backend_kwargs)
    sim = OnlineSimulator(trace, backend=backend, **sim_kwargs)
    result = sim.run(method_factories()[method]())
    return sim.manager.generation, result


class TestKernelBumpSites:
    """Every capacity-growing kernel transition bumps the generation."""

    def test_successful_releases_bump(self):
        gen, result = _generation_after(
            dict(arrival="poisson:600", seed=7),
            dict(cluster="6g:2"),
        )
        assert result.num_tasks > 0
        # One bump per release: every attempt (success or kill) frees
        # its allocation exactly once.
        assert gen >= result.num_tasks + result.num_failures

    def test_kills_bump(self):
        gen, result = _generation_after(
            dict(arrival="poisson:600", seed=7),
            dict(time_to_failure=0.7, cluster="6g:2"),
        )
        assert result.num_failures > 0
        # Every attempt — success or kill — releases capacity once.
        assert gen >= result.num_tasks + result.num_failures

    def test_outage_transitions_bump(self):
        with_outage, result = _generation_after(
            dict(arrival="poisson:600", seed=7, node_outage="0.005:0.02:0"),
            dict(time_to_failure=0.7, cluster="4g:2"),
        )
        without_outage, baseline = _generation_after(
            dict(arrival="poisson:600", seed=7),
            dict(time_to_failure=0.7, cluster="4g:2"),
        )
        attempts = result.num_tasks + result.num_failures
        # The single outage window bumps at its start and its end, on
        # top of the per-attempt releases.
        assert with_outage >= attempts + 2
        assert result.num_tasks == baseline.num_tasks


def test_stale_cache_never_blocks_after_release_in_kernel():
    """End-to-end: a full cluster drains and later tasks still place.

    With one 4G node and 3G allocations, every dispatch fills the
    cluster and queues the next head behind a cached failure; each
    completion must void the cache or the run would deadlock (the
    kernel raises on an unschedulable stall rather than spinning).
    """
    gen, result = _generation_after(
        dict(arrival="poisson:2000", seed=7),
        dict(cluster="4g:1"),
    )
    assert result.num_tasks > 0
    assert gen >= result.num_tasks
