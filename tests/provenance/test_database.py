"""Tests for the provenance record schema and database."""

import numpy as np
import pytest

from repro.provenance.database import ProvenanceDatabase
from repro.provenance.records import TaskRecord


def rec(task="align", machine="m1", ts=0, x=100.0, y=500.0, rt=0.1,
        success=True, attempt=1, iid=0):
    return TaskRecord(
        task_type=task,
        workflow="wf",
        machine=machine,
        timestamp=ts,
        input_size_mb=x,
        peak_memory_mb=y,
        runtime_hours=rt,
        success=success,
        attempt=attempt,
        instance_id=iid,
    )


class TestTaskRecord:
    def test_features(self):
        r = rec(x=42.0)
        assert r.features.shape == (1, 1)
        assert r.features[0, 0] == 42.0

    def test_pool_key(self):
        assert rec(task="a", machine="m2").pool_key == ("a", "m2")

    def test_validation(self):
        with pytest.raises(ValueError, match="peak_memory_mb"):
            rec(y=0.0)
        with pytest.raises(ValueError, match="runtime_hours"):
            rec(rt=-1.0)
        with pytest.raises(ValueError, match="attempt"):
            rec(attempt=0)


class TestProvenanceDatabase:
    def test_insert_and_count(self):
        db = ProvenanceDatabase()
        db.insert(rec(ts=0))
        db.insert(rec(ts=1, machine="m2"))
        assert len(db) == 2
        assert db.count("align") == 2
        assert db.count("align", machine="m1") == 1
        assert db.count("other") == 0

    def test_training_arrays_shapes(self):
        db = ProvenanceDatabase()
        for i in range(5):
            db.insert(rec(ts=i, x=float(i), y=100.0 + i, iid=i))
        X, y = db.training_arrays("align")
        assert X.shape == (5, 1)
        assert np.array_equal(X[:, 0], np.arange(5.0))
        assert np.array_equal(y, 100.0 + np.arange(5.0))

    def test_training_arrays_exclude_failures_by_default(self):
        db = ProvenanceDatabase()
        db.insert(rec(ts=0, y=100.0))
        db.insert(rec(ts=1, y=50.0, success=False))
        X, y = db.training_arrays("align")
        assert y.tolist() == [100.0]
        X2, y2 = db.training_arrays("align", include_failures=True)
        assert sorted(y2.tolist()) == [50.0, 100.0]

    def test_training_arrays_empty_for_unknown(self):
        db = ProvenanceDatabase()
        X, y = db.training_arrays("ghost")
        assert X.shape == (0, 1) and y.shape == (0,)

    def test_machine_filter(self):
        db = ProvenanceDatabase()
        db.insert(rec(ts=0, machine="m1", y=100.0))
        db.insert(rec(ts=1, machine="m2", y=200.0))
        _, y1 = db.training_arrays("align", machine="m1")
        assert y1.tolist() == [100.0]
        _, y_all = db.training_arrays("align")
        assert sorted(y_all.tolist()) == [100.0, 200.0]

    def test_max_observed_peak_tracks_successes_only(self):
        db = ProvenanceDatabase()
        assert db.max_observed_peak("align") is None
        db.insert(rec(ts=0, y=100.0))
        db.insert(rec(ts=1, y=900.0, success=False))  # failure: ignored
        db.insert(rec(ts=2, y=300.0))
        assert db.max_observed_peak("align") == 300.0

    def test_known_task_types(self):
        db = ProvenanceDatabase()
        db.insert(rec(task="a", y=10.0))
        db.insert(rec(task="b", y=20.0, success=False))
        assert db.known_task_types() == {"a"}

    def test_growth_beyond_initial_capacity(self):
        db = ProvenanceDatabase()
        n = 200  # initial partition capacity is 32; force several regrows
        for i in range(n):
            db.insert(rec(ts=i, x=float(i), y=float(i + 1), iid=i))
        X, y = db.training_arrays("align")
        assert X.shape == (n, 1)
        assert y[-1] == float(n)

    def test_peaks_and_runtimes(self):
        db = ProvenanceDatabase()
        db.insert(rec(ts=0, y=100.0, rt=0.5))
        db.insert(rec(ts=1, y=200.0, rt=1.5))
        assert sorted(db.peaks("align").tolist()) == [100.0, 200.0]
        assert sorted(db.runtimes("align").tolist()) == [0.5, 1.5]
        assert db.runtimes("ghost").shape == (0,)

    def test_partitions_listing(self):
        db = ProvenanceDatabase()
        db.insert(rec(task="b", machine="m2"))
        db.insert(rec(task="a", machine="m1"))
        assert db.partitions() == [("a", "m1"), ("b", "m2")]
