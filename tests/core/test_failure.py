"""Tests for the max-observed-then-double failure handler (paper §II-E)."""

import pytest

from repro.core.failure import FailureHandler


class TestFailureHandler:
    def test_first_failure_jumps_to_max_observed(self):
        fh = FailureHandler()
        got = fh.next_allocation(
            failed_allocation_mb=1000.0,
            attempt=1,
            max_observed_mb=5000.0,
            preset_mb=2000.0,
        )
        assert got == 5000.0

    def test_first_failure_without_history_uses_preset(self):
        fh = FailureHandler()
        got = fh.next_allocation(
            failed_allocation_mb=1000.0,
            attempt=1,
            max_observed_mb=None,
            preset_mb=3000.0,
        )
        assert got == 3000.0

    def test_first_failure_doubles_when_max_observed_not_above(self):
        # The failed attempt already exceeded all history: escalate.
        fh = FailureHandler()
        got = fh.next_allocation(
            failed_allocation_mb=6000.0,
            attempt=1,
            max_observed_mb=5000.0,
            preset_mb=2000.0,
        )
        assert got == 12000.0

    def test_subsequent_failures_double(self):
        fh = FailureHandler()
        got = fh.next_allocation(
            failed_allocation_mb=5000.0,
            attempt=2,
            max_observed_mb=99999.0,
            preset_mb=2000.0,
        )
        assert got == 10000.0

    def test_custom_doubling_factor(self):
        fh = FailureHandler(doubling_factor=3.0)
        assert (
            fh.next_allocation(100.0, attempt=2, max_observed_mb=None, preset_mb=1.0)
            == 300.0
        )

    def test_growth_guaranteed(self):
        # Whatever the inputs, the next allocation strictly exceeds the
        # failed one — the retry loop terminates.
        fh = FailureHandler()
        for attempt in (1, 2, 5):
            for max_obs in (None, 1.0, 500.0, 10000.0):
                nxt = fh.next_allocation(
                    1000.0, attempt=attempt, max_observed_mb=max_obs, preset_mb=1.0
                )
                assert nxt > 1000.0

    def test_validation(self):
        with pytest.raises(ValueError, match="doubling_factor"):
            FailureHandler(doubling_factor=1.0)
        fh = FailureHandler()
        with pytest.raises(ValueError, match="attempt"):
            fh.next_allocation(1.0, attempt=0, max_observed_mb=None, preset_mb=1.0)
        with pytest.raises(ValueError, match="failed_allocation_mb"):
            fh.next_allocation(0.0, attempt=1, max_observed_mb=None, preset_mb=1.0)
