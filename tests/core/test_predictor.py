"""Tests for the SizeyPredictor end-to-end behaviour."""

import numpy as np
import pytest

from repro.core.config import SizeyConfig
from repro.core.predictor import SizeyPredictor
from repro.provenance.records import TaskRecord
from repro.sim.interface import TaskSubmission


def sub(task="align", machine="m1", iid=0, x=100.0, preset=4096.0, ts=0):
    return TaskSubmission(
        task_type=task,
        workflow="wf",
        machine=machine,
        instance_id=iid,
        input_size_mb=x,
        preset_memory_mb=preset,
        timestamp=ts,
    )


def rec(task="align", machine="m1", ts=0, x=100.0, y=500.0, rt=0.1,
        success=True, iid=0, attempt=1):
    return TaskRecord(
        task_type=task,
        workflow="wf",
        machine=machine,
        timestamp=ts,
        input_size_mb=x,
        peak_memory_mb=y,
        runtime_hours=rt,
        success=success,
        attempt=attempt,
        instance_id=iid,
    )


def incremental_sizey(**over):
    defaults = dict(training_mode="incremental", model_classes=("linear", "knn"))
    defaults.update(over)
    return SizeyPredictor(SizeyConfig(**defaults))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"alpha": 1.1},
            {"gating": "sideways"},
            {"beta": 0.5},
            {"offset_strategy": "nope"},
            {"training_mode": "sometimes"},
            {"hpo_interval": 0},
            {"min_history": 0},
            {"granularity": "galaxy"},
            {"accuracy_mode": "vibes"},
            {"model_classes": ()},
            {"time_to_failure": 0.0},
            {"rf_refit_interval": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            SizeyConfig(**kwargs)

    def test_defaults_match_paper(self):
        c = SizeyConfig()
        assert c.alpha == 0.0
        assert c.gating == "interpolation"
        assert c.offset_strategy == "dynamic"
        assert c.model_classes == ("linear", "knn", "mlp", "random_forest")


class TestUnknownTaskFallback:
    def test_unknown_task_uses_preset(self):
        s = incremental_sizey()
        assert s.predict(sub(preset=8192.0)) == 8192.0
        assert s.preset_fallbacks == 1

    def test_min_history_gates_models(self):
        s = incremental_sizey(min_history=3)
        for i in range(2):
            s.observe(rec(ts=i, iid=i, x=100.0 + i, y=500.0))
        assert s.predict(sub(iid=10)) == 4096.0  # still preset
        s.observe(rec(ts=2, iid=2, x=102.0, y=500.0))
        got = s.predict(sub(iid=11, x=101.0))
        assert got != 4096.0  # models now active
        assert got == pytest.approx(500.0, rel=0.3)


class TestOnlineLearning:
    def test_predictions_improve_with_history(self):
        s = incremental_sizey()
        rng = np.random.default_rng(0)
        for i in range(40):
            x = rng.uniform(10, 1000)
            s.observe(rec(ts=i, iid=i, x=x, y=3.0 * x + 100.0))
        got = s.predict(sub(iid=99, x=500.0))
        assert got == pytest.approx(1600.0, rel=0.15)

    def test_pools_keyed_by_machine_by_default(self):
        s = incremental_sizey()
        s.observe(rec(machine="m1", iid=0))
        s.observe(rec(machine="m2", iid=1, ts=1))
        assert ("align", "m1") in s.pools
        assert ("align", "m2") in s.pools

    def test_task_granularity_merges_machines(self):
        s = incremental_sizey(granularity="task")
        s.observe(rec(machine="m1", iid=0))
        s.observe(rec(machine="m2", iid=1, ts=1))
        assert list(s.pools) == [("align", "*")]
        assert s.pools[("align", "*")].n_observations == 2

    def test_failure_records_not_trained_on(self):
        s = incremental_sizey()
        s.observe(rec(iid=0, success=False, y=50.0))
        assert not s.pools  # no pool created from failures
        assert s.db.max_observed_peak("align") is None

    def test_training_times_recorded(self):
        s = incremental_sizey()
        for i in range(5):
            s.observe(rec(ts=i, iid=i))
        assert len(s.training_times_s) == 5
        assert s.median_training_time_ms() >= 0.0

    def test_median_training_time_nan_when_empty(self):
        assert np.isnan(incremental_sizey().median_training_time_ms())


class TestOffsetsAndDiagnostics:
    def test_offset_applied_after_underpredictions(self):
        s = incremental_sizey(model_classes=("knn",))
        rng = np.random.default_rng(1)
        # Constant-ish noisy task: KNN predicts ~mean, offsets must pad.
        for i in range(30):
            s.predict(sub(iid=i, x=100.0, ts=i))
            s.observe(rec(ts=i, iid=i, x=100.0, y=float(rng.uniform(900, 1100))))
        raw_key = ("align", "m1")
        off, name = s.offsets[raw_key].current_offset()
        assert off > 0.0
        final = s.predict(sub(iid=999, x=100.0))
        pp = s.pools[raw_key].predict(np.array([[100.0]]))
        assert final == pytest.approx(pp.estimate + off, rel=1e-6)

    def test_selection_counts_populated(self):
        s = incremental_sizey()
        for i in range(10):
            s.observe(rec(ts=i, iid=i, x=float(i * 10 + 10), y=float(i * 30 + 100)))
        s.predict(sub(iid=50, x=55.0))
        shares = s.model_selection_shares()
        assert shares and abs(sum(shares.values()) - 1.0) < 1e-9

    def test_raw_prediction_log_for_fig12(self):
        s = incremental_sizey()
        for i in range(8):
            s.predict(sub(iid=i, x=100.0, ts=i))
            s.observe(rec(ts=i, iid=i, x=100.0, y=500.0))
        log = s.raw_prediction_log["align"]
        # First prediction was a preset fallback (no raw entry).
        assert len(log) == 7
        ts, raw, actual = log[-1]
        assert actual == 500.0 and raw > 0

    def test_selection_shares_empty_before_predictions(self):
        assert incremental_sizey().model_selection_shares() == {}


class TestFailureHandling:
    def test_first_failure_uses_max_observed(self):
        s = incremental_sizey()
        s.observe(rec(iid=0, y=2000.0))
        got = s.on_failure(sub(iid=1), failed_allocation_mb=500.0, attempt=1)
        assert got == 2000.0

    def test_no_history_uses_preset(self):
        s = incremental_sizey()
        got = s.on_failure(sub(preset=8192.0), 500.0, attempt=1)
        assert got == 8192.0

    def test_doubling_after_first(self):
        s = incremental_sizey()
        s.observe(rec(iid=0, y=2000.0))
        got = s.on_failure(sub(iid=1), failed_allocation_mb=3000.0, attempt=2)
        assert got == 6000.0
