"""Race regression tests for tenant/registry metrics snapshots.

``GET /metrics`` runs on executor threads while predict/observe traffic
mutates the same sessions: the payload must be built from consistent
snapshots (counters, histograms, and the eviction count all read under
their lock), never raise, and never report torn values — e.g. a
latency histogram whose bucket total disagrees with its count, or a
registry payload pairing a post-eviction counter with a pre-eviction
tenant list.
"""

import threading

import pytest

from repro.serve.protocol import parse_observe_request
from repro.serve.tenants import TenantRegistry, TenantSession
from repro.sim.interface import TaskSubmission


def _task(i: int) -> TaskSubmission:
    return TaskSubmission(
        task_type="align",
        workflow="wf",
        machine="default",
        instance_id=i,
        input_size_mb=1000.0 + i,
        preset_memory_mb=4096.0,
        timestamp=i,
    )


def _observations(i: int):
    _, items = parse_observe_request(
        {
            "tenant": "t",
            "observations": [
                {
                    "task_type": "align",
                    "workflow": "wf",
                    "machine": "default",
                    "instance_id": i,
                    "input_size_mb": 1000.0 + i,
                    "peak_memory_mb": 2000.0 + i,
                    "runtime_hours": 0.1,
                    "allocated_mb": 4096.0,
                    "success": True,
                }
            ],
        }
    )
    return items


class TestSessionMetricsRace:
    N_ROUNDS = 30

    def test_metrics_snapshot_is_internally_consistent(self):
        session = TenantSession("alice", base_seed=0)
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(self.N_ROUNDS):
                    session.predict([_task(i)])
                    session.observe(_observations(i))
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    payload = session.metrics()
                    for op in ("predict", "observe"):
                        snap = payload["latency"][op]
                        # Cumulative buckets end at the histogram count
                        # — a torn read would break this invariant.
                        assert snap["buckets"][-1][1] == snap["count"]
                        bounds = [b for b, _ in snap["buckets"]]
                        assert bounds[-1] is None
                        cums = [c for _, c in snap["buckets"]]
                        assert cums == sorted(cums)
                    # Counters move in lockstep under the session lock.
                    assert (
                        payload["latency"]["predict"]["count"]
                        == payload["n_predictions"]
                    )
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        final = session.metrics()
        assert final["n_predictions"] == self.N_ROUNDS
        assert final["latency"]["predict"]["count"] == self.N_ROUNDS
        assert final["latency"]["observe"]["count"] == self.N_ROUNDS


class TestRegistryMetricsRace:
    def test_eviction_counter_snapshotted_with_tenant_list(self):
        registry = TenantRegistry(base_seed=0, max_tenants=4)
        errors: list[BaseException] = []
        stop = threading.Event()

        def churn():
            try:
                for i in range(200):
                    registry.get(f"tenant-{i}")
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)
            finally:
                stop.set()

        def scrape():
            try:
                while not stop.is_set():
                    payload = registry.metrics()
                    assert payload["n_tenants"] <= payload["max_tenants"]
                    assert payload["evictions"] >= 0
                    # The tenant dict was listed in the same lock
                    # acquisition as n_tenants.
                    assert len(payload["tenants"]) == payload["n_tenants"]
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=churn)] + [
            threading.Thread(target=scrape) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        payload = registry.metrics()
        assert payload["evictions"] == 200 - 4
        assert payload["n_tenants"] == 4


class TestDeterministicLatencyClock:
    def test_injectable_clock_pins_buckets(self):
        ticks = iter([0.0, 0.002, 1.0, 1.3])  # 2 ms predict, 300 ms observe
        session = TenantSession(
            "alice", base_seed=0, clock=lambda: next(ticks)
        )
        session.predict([_task(0)])
        session.observe(_observations(0))
        snap = session.metrics()["latency"]
        assert snap["predict"]["count"] == 1
        assert snap["predict"]["sum_s"] == pytest.approx(0.002)
        # 2 ms lands in the le=0.0025 bucket, not the le=0.001 one.
        buckets = dict(
            (bound, cum) for bound, cum in snap["predict"]["buckets"]
        )
        assert buckets[0.001] == 0
        assert buckets[0.0025] == 1
        assert snap["observe"]["sum_s"] == pytest.approx(0.3)
