"""Tests for the fault-tolerance offset strategies (paper §II-E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offsets import OFFSET_STRATEGIES, OffsetTracker, compute_offset


class TestComputeOffset:
    PREDS = np.array([100.0, 100.0, 100.0, 100.0])
    ACTS = np.array([90.0, 110.0, 130.0, 80.0])  # errors: -10, 10, 30, -20

    def test_std(self):
        errors = self.ACTS - self.PREDS
        assert compute_offset("std", self.PREDS, self.ACTS) == pytest.approx(
            float(np.std(errors))
        )

    def test_std_under_uses_only_underpredictions(self):
        # underprediction errors: 10, 30
        assert compute_offset("std_under", self.PREDS, self.ACTS) == pytest.approx(
            float(np.std([10.0, 30.0]))
        )

    def test_median(self):
        assert compute_offset("median", self.PREDS, self.ACTS) == pytest.approx(
            float(np.median([10.0, 10.0, 30.0, 20.0]))
        )

    def test_median_under(self):
        assert compute_offset(
            "median_under", self.PREDS, self.ACTS
        ) == pytest.approx(20.0)

    def test_no_underpredictions_gives_zero(self):
        preds = np.array([100.0, 100.0])
        acts = np.array([50.0, 60.0])
        assert compute_offset("std_under", preds, acts) == 0.0
        assert compute_offset("median_under", preds, acts) == 0.0

    def test_empty_history_gives_zero(self):
        assert compute_offset("std", np.array([]), np.array([])) == 0.0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown offset"):
            compute_offset("bogus", self.PREDS, self.ACTS)

    @given(st.lists(st.floats(min_value=1, max_value=1e5), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_property_nonnegative(self, acts):
        acts_arr = np.array(acts)
        preds = np.full_like(acts_arr, float(np.mean(acts_arr)))
        for s in OFFSET_STRATEGIES:
            assert compute_offset(s, preds, acts_arr) >= 0.0


class TestOffsetTracker:
    def test_empty_tracker_offsets_zero(self):
        tr = OffsetTracker("dynamic")
        assert tr.current_offset() == (0.0, "none")

    def test_none_strategy(self):
        tr = OffsetTracker("none")
        tr.record(100.0, 120.0, 1.0)
        assert tr.current_offset() == (0.0, "none")

    def test_fixed_strategy_returns_its_statistic(self):
        tr = OffsetTracker("median_under")
        tr.record(100.0, 120.0, 1.0)
        tr.record(100.0, 90.0, 1.0)
        off, name = tr.current_offset()
        assert name == "median_under"
        assert off == pytest.approx(20.0)

    def test_dynamic_selects_among_strategies(self):
        tr = OffsetTracker("dynamic", time_to_failure=1.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            actual = 1000.0 + rng.normal(0, 50.0)
            tr.record(1000.0, actual, 0.1)
        off, name = tr.current_offset()
        assert name in OFFSET_STRATEGIES
        assert off > 0.0

    def test_dynamic_prefers_padding_when_failures_expensive(self):
        # Noisy history around the prediction: the zero-ish offsets lose
        # because every underprediction costs a full failed run plus a
        # retry, so dynamic must pick one of the larger statistics.
        tr = OffsetTracker("dynamic", time_to_failure=1.0, window=500)
        rng = np.random.default_rng(1)
        for _ in range(200):
            tr.record(1000.0, 1000.0 + rng.normal(0, 100.0), 1.0)
        off, _ = tr.current_offset()
        candidates = {
            s: compute_offset(
                s, np.full(200, 1000.0), np.array(tr._acts)
            )
            for s in OFFSET_STRATEGIES
        }
        assert off >= np.median(sorted(candidates.values()))

    def test_window_drops_old_entries(self):
        tr = OffsetTracker("std", window=10)
        for _ in range(5):
            tr.record(1000.0, 3000.0, 1.0)  # huge early errors
        for _ in range(10):
            tr.record(1000.0, 1001.0, 1.0)  # converged phase
        assert len(tr) == 10
        off, _ = tr.current_offset()
        assert off < 10.0  # early transient no longer inflates the offset

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            OffsetTracker("std", window=0)

    def test_record_validation(self):
        tr = OffsetTracker()
        with pytest.raises(ValueError):
            tr.record(100.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            tr.record(100.0, 100.0, -0.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="unknown offset"):
            OffsetTracker("nope")
        with pytest.raises(ValueError, match="time_to_failure"):
            OffsetTracker("dynamic", time_to_failure=0.0)

    def test_len(self):
        tr = OffsetTracker()
        tr.record(1.0, 1.0, 0.0)
        assert len(tr) == 1

    def test_perfect_predictions_need_no_offset(self):
        tr = OffsetTracker("dynamic")
        for _ in range(20):
            tr.record(500.0, 500.0, 0.5)
        off, _ = tr.current_offset()
        assert off == pytest.approx(0.0)
