"""Tests for the RAQ score components (paper Eqs. 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import (
    RunningAccuracy,
    accuracy_term,
    accuracy_terms,
    efficiency_scores,
    raq_scores,
)

pos_floats = st.floats(min_value=0.01, max_value=1e6)


class TestAccuracyTerm:
    def test_perfect_prediction_scores_one(self):
        assert accuracy_term(100.0, 100.0) == 1.0

    def test_relative_error_scaling(self):
        # 10% error -> 0.9
        assert accuracy_term(110.0, 100.0) == pytest.approx(0.9)
        assert accuracy_term(90.0, 100.0) == pytest.approx(0.9)

    def test_error_bounded_at_one(self):
        # A 10x overestimate is clipped: score 0, not negative (Eq. 1).
        assert accuracy_term(1000.0, 100.0) == 0.0
        assert accuracy_term(0.0, 100.0) == 0.0

    def test_rejects_nonpositive_truth(self):
        with pytest.raises(ValueError, match="positive"):
            accuracy_term(1.0, 0.0)

    @given(pos_floats, pos_floats)
    @settings(max_examples=50, deadline=None)
    def test_property_in_unit_interval(self, pred, true):
        assert 0.0 <= accuracy_term(pred, true) <= 1.0

    def test_vectorised_matches_scalar(self):
        preds = np.array([110.0, 90.0, 1000.0])
        trues = np.array([100.0, 100.0, 100.0])
        v = accuracy_terms(preds, trues)
        s = [accuracy_term(p, t) for p, t in zip(preds, trues)]
        assert np.allclose(v, s)


class TestRunningAccuracy:
    def test_zero_before_first_observation(self):
        assert RunningAccuracy().score == 0.0

    def test_mean_of_terms(self):
        acc = RunningAccuracy()
        acc.update(110.0, 100.0)  # 0.9
        acc.update(100.0, 100.0)  # 1.0
        assert acc.score == pytest.approx(0.95)
        assert acc.count == 2

    def test_reset_to(self):
        acc = RunningAccuracy()
        acc.update(0.0, 100.0)
        acc.reset_to(np.array([1.0, 0.5]))
        assert acc.score == pytest.approx(0.75)
        assert acc.count == 2

    def test_matches_eq1_over_sequence(self):
        rng = np.random.default_rng(0)
        preds = rng.uniform(50, 150, 30)
        trues = rng.uniform(50, 150, 30)
        acc = RunningAccuracy()
        for p, t in zip(preds, trues):
            acc.update(p, t)
        expected = float(np.mean(accuracy_terms(preds, trues)))
        assert acc.score == pytest.approx(expected)


class TestEfficiencyScores:
    def test_largest_estimate_scores_zero(self):
        es = efficiency_scores(np.array([100.0, 200.0, 400.0]))
        assert es[2] == 0.0

    def test_smaller_estimates_score_higher(self):
        es = efficiency_scores(np.array([100.0, 200.0, 400.0]))
        assert es[0] > es[1] > es[2]
        assert es[0] == pytest.approx(0.75)
        assert es[1] == pytest.approx(0.5)

    def test_single_model_scores_zero(self):
        assert efficiency_scores(np.array([123.0]))[0] == 0.0

    def test_equal_estimates_all_zero(self):
        es = efficiency_scores(np.array([5.0, 5.0, 5.0]))
        assert np.allclose(es, 0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            efficiency_scores(np.array([1.0, 0.0]))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            efficiency_scores(np.array([]))
        with pytest.raises(ValueError):
            efficiency_scores(np.ones((2, 2)))

    @given(st.lists(pos_floats, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_property_unit_interval(self, preds):
        es = efficiency_scores(np.array(preds))
        assert np.all(es >= 0.0) and np.all(es <= 1.0)
        assert es.min() == 0.0  # the max prediction always scores 0


class TestRAQ:
    def test_alpha_zero_is_pure_accuracy(self):
        acc = np.array([0.9, 0.5])
        eff = np.array([0.1, 0.8])
        assert np.allclose(raq_scores(acc, eff, 0.0), acc)

    def test_alpha_one_is_pure_efficiency(self):
        acc = np.array([0.9, 0.5])
        eff = np.array([0.1, 0.8])
        assert np.allclose(raq_scores(acc, eff, 1.0), eff)

    def test_blend(self):
        got = raq_scores(np.array([1.0]), np.array([0.0]), 0.25)
        assert got[0] == pytest.approx(0.75)

    def test_alpha_domain(self):
        with pytest.raises(ValueError, match="alpha"):
            raq_scores(np.array([0.5]), np.array([0.5]), 1.5)

    def test_score_domain_checked(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            raq_scores(np.array([2.0]), np.array([0.5]), 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            raq_scores(np.array([0.5, 0.5]), np.array([0.5]), 0.5)

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=6),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_output_in_unit_interval(self, scores, alpha):
        a = np.array(scores)
        raq = raq_scores(a, 1.0 - a, alpha)
        assert np.all(raq >= -1e-12) and np.all(raq <= 1.0 + 1e-12)
