"""Tests for the per-(task type, machine) model pool."""

import numpy as np
import pytest

from repro.core.models import (
    KNNSlot,
    LinearSlot,
    MLPSlot,
    ModelSlot,
    RandomForestSlot,
    build_slots,
    register_slot,
    CUSTOM_SLOT_REGISTRY,
)
from repro.core.pool import ModelPool


def feed_linear(pool, n=30, slope=2.0, intercept=100.0, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = rng.uniform(10, 1000)
        pool.update(np.array([[x]]), slope * x + intercept)


class TestSlots:
    def test_build_slots_all_classes(self):
        slots = build_slots(
            ("linear", "knn", "mlp", "random_forest"), "full", random_state=0
        )
        assert [s.class_name for s in slots] == [
            "linear",
            "knn",
            "mlp",
            "random_forest",
        ]

    def test_build_slots_unknown(self):
        with pytest.raises(ValueError, match="unknown model class"):
            build_slots(("warp_drive",), "full", 0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            LinearSlot("sideways")

    def test_linear_slot_full(self):
        s = LinearSlot("full")
        X = np.arange(1, 11, dtype=float).reshape(-1, 1)
        s.train_full(X, 3.0 * X[:, 0], do_hpo=True)
        assert s.predict_one(np.array([[5.0]])) == pytest.approx(15.0)

    def test_linear_slot_incremental_matches_batch(self):
        s = LinearSlot("incremental")
        rng = np.random.default_rng(1)
        for _ in range(50):
            x = rng.uniform(1, 100)
            s.update_incremental(
                np.array([[x]]), 2.0 * x + 10.0, None, None, 0
            )
        assert s.predict_one(np.array([[50.0]])) == pytest.approx(110.0, rel=0.01)

    def test_knn_slot_hpo_caches_params(self):
        s = KNNSlot("full")
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 10, size=(30, 1))
        y = X[:, 0] ** 2
        s.train_full(X, y, do_hpo=True)
        cached = dict(s._best_params)
        s.train_full(X, y, do_hpo=False)
        assert s._best_params == cached

    def test_mlp_slot_scaling_roundtrip(self):
        s = MLPSlot("full", random_state=0)
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 5000, size=(60, 1))
        y = 3.0 * X[:, 0] + 1e4
        s.train_full(X, y, do_hpo=False)
        pred = s.predict_one(np.array([[2500.0]]))
        assert pred == pytest.approx(3.0 * 2500.0 + 1e4, rel=0.25)

    def test_mlp_incremental_welford_scaling(self):
        s = MLPSlot("incremental", random_state=0)
        rng = np.random.default_rng(4)
        xs, ys = [], []
        for i in range(80):
            x = rng.uniform(0, 1000)
            y = 2.0 * x + 500.0
            xs.append([x])
            ys.append(y)
            w = np.array(xs[-32:]), np.array(ys[-32:])
            s.update_incremental(np.array([[x]]), y, w[0], w[1], i + 1)
        pred = s.predict_one(np.array([[500.0]]))
        assert pred == pytest.approx(1500.0, rel=0.3)

    def test_rf_slot_refit_cadence(self):
        s = RandomForestSlot("incremental", refit_interval=4)
        X = np.arange(1, 9, dtype=float).reshape(-1, 1)
        y = X[:, 0] * 10
        s.update_incremental(X[:1], y[0], X[:1], y[:1], 1)
        model_after_first = s._model
        # n_seen=2,3 -> no refit; n_seen=4 -> refit
        s.update_incremental(X[1:2], y[1], X[:2], y[:2], 2)
        assert s._model is model_after_first
        s.update_incremental(X[3:4], y[3], X[:4], y[:4], 4)
        assert s._model is not model_after_first

    def test_predictions_clamped_positive(self):
        s = LinearSlot("full")
        X = np.array([[1.0], [2.0]])
        y = np.array([100.0, 1.0])  # steep negative slope
        s.train_full(X, y, do_hpo=False)
        assert s.predict_one(np.array([[100.0]])) >= 1.0

    def test_custom_slot_registration(self):
        class ConstantSlot(ModelSlot):
            class_name = "constant"

            def train_full(self, X, y, do_hpo):
                self._value = float(np.mean(y))
                self.fitted = True

            def update_incremental(self, x_new, y_new, Xw, yw, n):
                self._value = float(np.mean(yw))
                self.fitted = True

            def predict(self, X):
                return np.full(np.asarray(X).shape[0], self._value)

        try:
            register_slot("constant", ConstantSlot)
            slots = build_slots(("linear", "constant"), "full", 0)
            assert slots[1].class_name == "constant"
            with pytest.raises(ValueError, match="built-in"):
                register_slot("linear", ConstantSlot)
        finally:
            CUSTOM_SLOT_REGISTRY.pop("constant", None)

    def test_register_rejects_non_slot(self):
        with pytest.raises(TypeError):
            register_slot("zzz", dict)


class TestModelPool:
    def test_not_ready_before_update(self):
        pool = ModelPool(("linear",))
        assert not pool.is_ready
        with pytest.raises(RuntimeError, match="no fitted models"):
            pool.predict(np.array([[1.0]]))

    def test_ready_after_one_update(self):
        pool = ModelPool(("linear", "knn"))
        pool.update(np.array([[10.0]]), 100.0)
        assert pool.is_ready
        pp = pool.predict(np.array([[10.0]]))
        assert np.isfinite(pp.estimate)

    def test_prequential_accuracy_is_out_of_sample(self):
        # The accuracy update happens BEFORE training on the point: a
        # memorising model (KNN k=1) must not get credit for points it
        # has already seen.
        pool = ModelPool(("knn",), training_mode="full")
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(0, 100)
            pool.update(np.array([[x]]), rng.uniform(100, 200))
        # Unpredictable targets: prequential accuracy must be < 1.
        assert pool.accuracy_scores()[0] < 0.99

    def test_accuracy_tracks_good_model(self):
        pool = ModelPool(("linear", "knn"), training_mode="full", alpha=0.0)
        feed_linear(pool, n=40)
        acc = pool.accuracy_scores()
        # Linear data: the linear model should be at least as accurate.
        assert acc[0] >= acc[1] - 0.02

    def test_gated_estimate_close_on_linear_task(self):
        pool = ModelPool(
            ("linear", "knn", "random_forest"),
            training_mode="full",
            gating="argmax",
        )
        feed_linear(pool, n=40)
        pp = pool.predict(np.array([[500.0]]))
        assert pp.estimate == pytest.approx(1100.0, rel=0.05)
        assert pp.selected_model in ("linear", "knn", "random_forest")

    def test_interpolation_weights_sum_to_one(self):
        pool = ModelPool(("linear", "knn"), gating="interpolation", beta=5.0)
        feed_linear(pool, n=10)
        pp = pool.predict(np.array([[100.0]]))
        assert pp.weights.sum() == pytest.approx(1.0)

    def test_incremental_mode_runs(self):
        pool = ModelPool(
            ("linear", "knn", "mlp", "random_forest"),
            training_mode="incremental",
        )
        feed_linear(pool, n=25)
        pp = pool.predict(np.array([[500.0]]))
        assert pp.estimate > 0

    def test_retrospective_accuracy_mode(self):
        pool = ModelPool(
            ("linear",), training_mode="full", accuracy_mode="retrospective"
        )
        feed_linear(pool, n=10)
        # Retrospective on noiseless linear data: near-perfect accuracy.
        assert pool.accuracy_scores()[0] > 0.99

    def test_update_returns_duration(self):
        pool = ModelPool(("linear",))
        dt = pool.update(np.array([[1.0]]), 10.0)
        assert dt >= 0.0
        assert pool.last_update_seconds == dt

    def test_hpo_interval_respected(self):
        pool = ModelPool(("knn",), training_mode="full", hpo_interval=1000)
        feed_linear(pool, n=12)
        # Only the first fit ran HPO; params stayed cached afterwards.
        assert pool.n_observations == 12

    def test_n_observations(self):
        pool = ModelPool(("linear",))
        feed_linear(pool, n=7)
        assert pool.n_observations == 7

    def test_multi_feature_history(self):
        # The history buffer sizes itself from the first appended vector
        # — d=2 submissions must not crash on append (regression: the
        # buffer was hardcoded to one feature column).
        pool = ModelPool(("linear",), training_mode="full")
        rng = np.random.default_rng(5)
        for _ in range(25):
            a, b = rng.uniform(10, 1000, size=2)
            pool.update(np.array([[a, b]]), 2.0 * a + 0.5 * b + 50.0)
        assert pool.n_observations == 25
        pp = pool.predict(np.array([[500.0, 200.0]]))
        assert pp.estimate == pytest.approx(1150.0, rel=0.05)

    def test_multi_feature_incremental_mode(self):
        pool = ModelPool(("linear", "knn"), training_mode="incremental")
        rng = np.random.default_rng(6)
        for _ in range(30):
            a, b = rng.uniform(10, 100, size=2)
            pool.update(np.array([[a, b]]), a + b)
        assert pool.is_ready
        assert np.isfinite(pool.predict(np.array([[50.0, 50.0]])).estimate)

    def test_history_rejects_dimension_change(self):
        from repro.core.pool import _History

        hist = _History()
        hist.append(np.array([1.0, 2.0]), 10.0)
        with pytest.raises(ValueError, match="feature dimension"):
            hist.append(np.array([1.0]), 10.0)

    def test_history_growth_preserves_multi_feature_rows(self):
        from repro.core.pool import _History

        hist = _History()
        for i in range(100):  # forces several capacity doublings
            hist.append(np.array([float(i), float(2 * i)]), float(i))
        assert hist.X.shape == (100, 2)
        assert hist.X[97].tolist() == [97.0, 194.0]
        assert hist.y[97] == 97.0
