"""Concurrency regression tests for :class:`repro.core.pool.ModelPool`.

The sizing server shares one pool between interleaved predict and
observe requests, so ``update()`` racing ``predict_batch()`` from
multiple threads must never raise, never expose a half-rebuilt
fitted-slot cache, and always leave the pool in the same state a serial
execution of the same updates would.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.core.pool import ModelPool


def _make_pool(**kwargs):
    return ModelPool(
        ("linear", "knn"),
        hpo_interval=1000,
        **kwargs,
    )


def _seed_pool(pool, n=4, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = float(rng.uniform(100.0, 2000.0))
        pool.update(np.array([[x]]), 4.0 * x + 512.0)


class TestConcurrentPredictUpdate:
    N_UPDATES = 40
    N_PREDICT_BATCHES = 120

    def test_interleaved_update_predict_batch_never_raises(self):
        pool = _make_pool()
        _seed_pool(pool)
        errors: list[BaseException] = []
        stop = threading.Event()
        rng = np.random.default_rng(1)
        xs = rng.uniform(100.0, 2000.0, size=self.N_UPDATES)

        def writer():
            try:
                for x in xs:
                    pool.update(np.array([[x]]), 4.0 * x + 512.0)
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            X = np.array([[300.0], [900.0], [1500.0]])
            try:
                while not stop.is_set():
                    for pp in pool.predict_batch(X):
                        # The record must be internally coherent: one
                        # prediction, accuracy, and RAQ entry per model
                        # named — a stale cache mid-rebuild would tear
                        # these apart.
                        n = len(pp.model_names)
                        assert pp.predictions.shape == (n,)
                        assert pp.accuracy.shape == (n,)
                        assert pp.raq.shape == (n,)
                        assert 0 <= pp.selected_index < n
                        assert np.isfinite(pp.estimate)
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writer_t = threading.Thread(target=writer)
        for t in readers:
            t.start()
        writer_t.start()
        writer_t.join(timeout=60)
        for t in readers:
            t.join(timeout=60)
        assert not errors, errors
        assert pool.n_observations == 4 + self.N_UPDATES

    def test_threaded_updates_match_serial_history(self):
        """Racing updates must serialize: no lost observations."""
        pool = _make_pool()
        barrier = threading.Barrier(4)
        rng = np.random.default_rng(2)
        chunks = [rng.uniform(100.0, 2000.0, size=10) for _ in range(4)]

        def writer(chunk):
            barrier.wait()
            for x in chunk:
                pool.update(np.array([[x]]), 4.0 * x + 512.0)

        threads = [threading.Thread(target=writer, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert pool.n_observations == 40
        # Every fitted slot participates in the refreshed cache.
        pp = pool.predict(np.array([[800.0]]))
        assert len(pp.model_names) == len(
            [s for s in pool.slots if s.fitted]
        )

    def test_predict_during_update_sees_old_or_new_cache_never_torn(self):
        """Accuracy arrays handed out are snapshots, not live views."""
        pool = _make_pool(accuracy_window=5)
        _seed_pool(pool, n=6)
        before = pool.predict(np.array([[500.0]]))
        frozen = before.accuracy.copy()
        pool.update(np.array([[777.0]]), 4.0 * 777.0 + 512.0)
        # The retained record must not have been mutated by the update.
        np.testing.assert_array_equal(before.accuracy, frozen)

    def test_pool_pickles_without_lock(self):
        pool = _make_pool()
        _seed_pool(pool, n=3)
        clone = pickle.loads(pickle.dumps(pool))
        x = np.array([[640.0]])
        assert clone.predict(x).estimate == pytest.approx(
            pool.predict(x).estimate
        )
        # The restored pool has a working lock: update still serializes.
        clone.update(x, 3000.0)
        assert clone.n_observations == pool.n_observations + 1
