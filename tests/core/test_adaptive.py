"""Tests for the adaptive-alpha extension (paper future work, §III-E)."""

import numpy as np
import pytest

from repro.core.adaptive import DEFAULT_ALPHA_CANDIDATES, AdaptiveAlphaSizey
from repro.core.config import SizeyConfig
from repro.provenance.records import TaskRecord
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import TaskSubmission
from repro.workflow.nfcore import build_workflow_trace


def sub(iid=0, x=100.0, task="t", preset=4096.0):
    return TaskSubmission(
        task_type=task,
        workflow="wf",
        machine="m1",
        instance_id=iid,
        input_size_mb=x,
        preset_memory_mb=preset,
        timestamp=iid,
    )


def rec(iid=0, x=100.0, y=500.0, task="t", success=True):
    return TaskRecord(
        task_type=task,
        workflow="wf",
        machine="m1",
        timestamp=iid,
        input_size_mb=x,
        peak_memory_mb=y,
        runtime_hours=0.1,
        success=success,
        instance_id=iid,
    )


def make_adaptive(**cfg):
    defaults = dict(training_mode="incremental", model_classes=("linear", "knn"))
    defaults.update(cfg)
    return AdaptiveAlphaSizey(SizeyConfig(**defaults))


class TestAdaptiveAlpha:
    def test_rejects_bad_candidates(self):
        with pytest.raises(ValueError, match="alpha candidates"):
            AdaptiveAlphaSizey(alpha_candidates=(0.0, 1.5))
        with pytest.raises(ValueError, match="alpha candidates"):
            AdaptiveAlphaSizey(alpha_candidates=())

    def test_default_candidates(self):
        assert AdaptiveAlphaSizey().alpha_candidates == DEFAULT_ALPHA_CANDIDATES

    def test_unknown_task_uses_preset(self):
        a = make_adaptive()
        assert a.predict(sub(preset=2048.0)) == 2048.0

    def test_tracks_per_candidate_waste(self):
        a = make_adaptive()
        for i in range(10):
            a.predict(sub(iid=i, x=100.0 + i))
            a.observe(rec(iid=i, x=100.0 + i, y=500.0))
        key = ("t", "m1")
        waste = a._alpha_waste[key]
        assert waste.shape == (len(DEFAULT_ALPHA_CANDIDATES),)
        assert np.all(waste >= 0.0)

    def test_alpha_choice_recorded(self):
        a = make_adaptive()
        for i in range(6):
            a.predict(sub(iid=i))
            a.observe(rec(iid=i))
        assert len(a.alpha_choices["t"]) >= 5
        assert all(c in DEFAULT_ALPHA_CANDIDATES for c in a.alpha_choices["t"])

    def test_current_alpha_minimises_accumulated_waste(self):
        a = make_adaptive()
        key = ("t", "m1")
        a._alpha_waste[key] = np.array([5.0, 1.0, 9.0, 9.0, 9.0])
        assert a.current_alpha(key) == DEFAULT_ALPHA_CANDIDATES[1]

    def test_end_to_end_on_trace(self):
        trace = build_workflow_trace("iwd", seed=2, scale=0.15)
        res = OnlineSimulator(trace).run(AdaptiveAlphaSizey())
        assert res.method == "Sizey-AdaptiveAlpha"
        assert res.total_wastage_gbh > 0
        assert res.num_tasks == len(trace)
