"""Tests for the Argmax and Interpolation gating strategies (Eq. 4)."""

import numpy as np
import pytest

from repro.core.gating import argmax_gate, gate, interpolation_gate


class TestArgmax:
    def test_picks_highest_raq(self):
        d = argmax_gate(np.array([100.0, 200.0]), np.array([0.3, 0.9]))
        assert d.estimate == 200.0
        assert d.selected_index == 1
        assert d.weights.tolist() == [0.0, 1.0]

    def test_tie_breaks_to_first(self):
        d = argmax_gate(np.array([100.0, 200.0]), np.array([0.5, 0.5]))
        assert d.selected_index == 0

    def test_single_model(self):
        d = argmax_gate(np.array([42.0]), np.array([0.1]))
        assert d.estimate == 42.0


class TestInterpolation:
    def test_equal_raq_gives_mean(self):
        d = interpolation_gate(
            np.array([100.0, 300.0]), np.array([0.5, 0.5]), beta=5.0
        )
        assert d.estimate == pytest.approx(200.0)
        assert np.allclose(d.weights, [0.5, 0.5])

    def test_weights_sum_to_one(self):
        d = interpolation_gate(
            np.array([1.0, 2.0, 3.0]), np.array([0.2, 0.5, 0.9]), beta=7.0
        )
        assert d.weights.sum() == pytest.approx(1.0)

    def test_softmax_formula_eq4(self):
        preds = np.array([100.0, 200.0])
        raq = np.array([0.4, 0.8])
        beta = 3.0
        w = np.exp(beta * raq) / np.exp(beta * raq).sum()
        d = interpolation_gate(preds, raq, beta)
        assert np.allclose(d.weights, w)
        assert d.estimate == pytest.approx(float(w @ preds))

    def test_large_beta_converges_to_argmax(self):
        preds = np.array([100.0, 200.0, 50.0])
        raq = np.array([0.2, 0.9, 0.4])
        d = interpolation_gate(preds, raq, beta=500.0)
        assert d.estimate == pytest.approx(200.0, rel=1e-9)

    def test_numerically_stable_for_huge_beta(self):
        d = interpolation_gate(
            np.array([1.0, 2.0]), np.array([0.0, 1.0]), beta=1e6
        )
        assert np.isfinite(d.estimate)
        assert d.estimate == pytest.approx(2.0)

    def test_selected_index_is_argmax_for_diagnostics(self):
        d = interpolation_gate(
            np.array([10.0, 20.0]), np.array([0.9, 0.1]), beta=2.0
        )
        assert d.selected_index == 0

    def test_beta_domain(self):
        with pytest.raises(ValueError, match="beta"):
            interpolation_gate(np.array([1.0]), np.array([0.5]), beta=0.5)

    def test_estimate_within_prediction_range(self):
        # A convex combination can never leave [min, max] of predictions.
        rng = np.random.default_rng(0)
        for _ in range(20):
            preds = rng.uniform(10, 1000, 4)
            raq = rng.uniform(0, 1, 4)
            d = interpolation_gate(preds, raq, beta=rng.uniform(1, 50))
            assert preds.min() - 1e-9 <= d.estimate <= preds.max() + 1e-9


class TestDispatch:
    def test_gate_dispatches(self):
        preds = np.array([1.0, 9.0])
        raq = np.array([1.0, 0.0])
        assert gate(preds, raq, "argmax").estimate == 1.0
        assert gate(preds, raq, "interpolation", beta=1.0).estimate < 9.0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown gating"):
            gate(np.array([1.0]), np.array([1.0]), "mystery")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            argmax_gate(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_predictions(self):
        with pytest.raises(ValueError, match="non-empty"):
            argmax_gate(np.array([]), np.array([]))
