"""Tests for individual model slots not covered by the pool tests."""

import numpy as np
import pytest

from repro.core.models import (
    GradientBoostingSlot,
    MLPSlot,
    build_slots,
)


def linear_data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(10, 1000, size=(n, 1))
    return X, 2.0 * X[:, 0] + 100.0


class TestGradientBoostingSlot:
    def test_available_as_builtin_class(self):
        slots = build_slots(("gbrt",), "full", 0)
        assert slots[0].class_name == "gbrt"

    def test_full_training(self):
        X, y = linear_data()
        s = GradientBoostingSlot("full")
        s.train_full(X, y, do_hpo=False)
        assert s.fitted
        pred = s.predict_one(np.array([[500.0]]))
        assert pred == pytest.approx(1100.0, rel=0.15)

    def test_incremental_refit_cadence(self):
        X, y = linear_data()
        s = GradientBoostingSlot("incremental", refit_interval=8)
        s.update_incremental(X[:1], y[0], X[:1], y[:1], 1)
        first = s._model
        s.update_incremental(X[1:2], y[1], X[:2], y[:2], 2)
        assert s._model is first  # between cadence points: stale model
        s.update_incremental(X[7:8], y[7], X[:8], y[:8], 8)
        assert s._model is not first

    def test_predictions_clamped(self):
        s = GradientBoostingSlot("full")
        X = np.array([[1.0], [2.0], [3.0]])
        s.train_full(X, np.array([5.0, 3.0, 1.0]), do_hpo=False)
        assert s.predict_one(np.array([[100.0]])) >= 1.0


class TestMLPSlotEdgeCases:
    def test_constant_targets_do_not_divide_by_zero(self):
        X, _ = linear_data(n=20)
        y = np.full(20, 512.0)
        s = MLPSlot("full", random_state=0)
        s.train_full(X, y, do_hpo=False)
        assert s.predict_one(np.array([[500.0]])) == pytest.approx(512.0, rel=0.2)

    def test_full_mode_caps_training_points(self):
        s = MLPSlot("full", random_state=0, max_train_points=32)
        X, y = linear_data(n=100)
        s.train_full(X, y, do_hpo=False)
        # Scaling state reflects only the last 32 points.
        assert s._x_mean == pytest.approx(float(X[-32:].mean()), rel=1e-9)

    def test_incremental_single_point_start(self):
        s = MLPSlot("incremental", random_state=0)
        x = np.array([[100.0]])
        s.update_incremental(x, 500.0, x, np.array([500.0]), 1)
        assert s.fitted
        assert np.isfinite(s.predict_one(x))
