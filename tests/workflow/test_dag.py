"""Tests for the workflow DAG."""

import pytest

from repro.workflow.dag import CycleError, WorkflowDAG


class TestConstruction:
    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowDAG(["a", "a"])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="unknown node"):
            WorkflowDAG(["a"], [("a", "b")])

    def test_rejects_self_loop(self):
        with pytest.raises(CycleError, match="self-loop"):
            WorkflowDAG(["a"], [("a", "a")])

    def test_rejects_cycle(self):
        with pytest.raises(CycleError, match="cycle"):
            WorkflowDAG(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")])

    def test_edges_roundtrip(self):
        dag = WorkflowDAG(["a", "b", "c"], [("a", "b"), ("a", "c")])
        assert sorted(dag.edges) == [("a", "b"), ("a", "c")]


class TestTopology:
    def test_topological_order_respects_edges(self):
        dag = WorkflowDAG(
            ["fetch", "align", "sort", "report"],
            [("fetch", "align"), ("align", "sort"), ("sort", "report")],
        )
        order = dag.topological_order()
        for u, v in dag.edges:
            assert order.index(u) < order.index(v)

    def test_stages_group_parallel_nodes(self):
        dag = WorkflowDAG.fan_out_fan_in("src", ["p1", "p2", "p3"], "sink")
        assert dag.stages == [["src"], ["p1", "p2", "p3"], ["sink"]]

    def test_linear_pipeline(self):
        dag = WorkflowDAG.linear_pipeline(["a", "b", "c"])
        assert dag.stages == [["a"], ["b"], ["c"]]
        assert dag.predecessors("b") == ["a"]
        assert dag.successors("b") == ["c"]

    def test_isolated_nodes_in_first_stage(self):
        dag = WorkflowDAG(["a", "b", "c"], [("a", "b")])
        assert sorted(dag.stages[0]) == ["a", "c"]

    def test_predecessors_unknown_node(self):
        dag = WorkflowDAG(["a"])
        with pytest.raises(KeyError):
            dag.predecessors("zzz")

    def test_stage_count_is_longest_path(self):
        # Diamond with a long tail: a->b->d, a->c->d, d->e
        dag = WorkflowDAG(
            ["a", "b", "c", "d", "e"],
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")],
        )
        assert len(dag.stages) == 4

    def test_all_nodes_appear_exactly_once_in_stages(self):
        dag = WorkflowDAG.fan_out_fan_in("s", ["x", "y"], "t")
        flattened = [n for stage in dag.stages for n in stage]
        assert sorted(flattened) == sorted(dag.nodes)


class TestEdgeCaseTopologies:
    def test_diamond_stages(self):
        dag = WorkflowDAG(
            ["a", "b", "c", "d"],
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        assert dag.stages == [["a"], ["b", "c"], ["d"]]
        assert sorted(dag.predecessors("d")) == ["b", "c"]

    def test_diamond_with_shortcut_uses_longest_path(self):
        # a -> d directly AND via b: d sits at depth 2, not 1.
        dag = WorkflowDAG(
            ["a", "b", "d"], [("a", "b"), ("a", "d"), ("b", "d")]
        )
        assert dag.stages == [["a"], ["b"], ["d"]]

    def test_disconnected_node_is_a_root_stage_member(self):
        dag = WorkflowDAG(["a", "b", "lonely"], [("a", "b")])
        assert dag.stages[0] == ["a", "lonely"]
        assert dag.predecessors("lonely") == []
        assert dag.successors("lonely") == []
        assert "lonely" in dag.topological_order()

    def test_fully_disconnected_graph_is_one_stage(self):
        dag = WorkflowDAG(["c", "a", "b"])
        assert dag.stages == [["a", "b", "c"]]

    def test_multi_root_fan_in(self):
        dag = WorkflowDAG(
            ["r1", "r2", "r3", "sink"],
            [("r1", "sink"), ("r2", "sink"), ("r3", "sink")],
        )
        assert dag.stages == [["r1", "r2", "r3"], ["sink"]]
        order = dag.topological_order()
        assert order.index("sink") == 3

    def test_cycle_error_names_the_cycle_members(self):
        with pytest.raises(CycleError) as exc:
            WorkflowDAG(
                ["a", "b", "c", "ok"],
                [("a", "b"), ("b", "c"), ("c", "a"), ("a", "ok")],
            )
        message = str(exc.value)
        assert "dependency cycle" in message
        for node in ("a", "b", "c"):
            assert node in message
        # Nodes outside the cycle are not blamed.
        assert "ok" not in message

    def test_self_loop_error_names_the_node(self):
        with pytest.raises(CycleError, match="self-loop on 'x'"):
            WorkflowDAG(["x"], [("x", "x")])

    def test_two_node_cycle(self):
        with pytest.raises(CycleError, match="cycle"):
            WorkflowDAG(["a", "b"], [("a", "b"), ("b", "a")])

    def test_cycle_error_spares_bridges_between_two_cycles(self):
        # a<->b -> m -> c<->d: m sits between two cycles but is on none.
        with pytest.raises(CycleError) as exc:
            WorkflowDAG(
                ["a", "b", "m", "c", "d"],
                [("a", "b"), ("b", "a"), ("b", "m"),
                 ("m", "c"), ("c", "d"), ("d", "c")],
            )
        message = str(exc.value)
        for node in ("a", "b", "c", "d"):
            assert node in message
        assert "'m'" not in message
