"""Tests for the workflow DAG."""

import pytest

from repro.workflow.dag import CycleError, WorkflowDAG


class TestConstruction:
    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowDAG(["a", "a"])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="unknown node"):
            WorkflowDAG(["a"], [("a", "b")])

    def test_rejects_self_loop(self):
        with pytest.raises(CycleError, match="self-loop"):
            WorkflowDAG(["a"], [("a", "a")])

    def test_rejects_cycle(self):
        with pytest.raises(CycleError, match="cycle"):
            WorkflowDAG(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")])

    def test_edges_roundtrip(self):
        dag = WorkflowDAG(["a", "b", "c"], [("a", "b"), ("a", "c")])
        assert sorted(dag.edges) == [("a", "b"), ("a", "c")]


class TestTopology:
    def test_topological_order_respects_edges(self):
        dag = WorkflowDAG(
            ["fetch", "align", "sort", "report"],
            [("fetch", "align"), ("align", "sort"), ("sort", "report")],
        )
        order = dag.topological_order()
        for u, v in dag.edges:
            assert order.index(u) < order.index(v)

    def test_stages_group_parallel_nodes(self):
        dag = WorkflowDAG.fan_out_fan_in("src", ["p1", "p2", "p3"], "sink")
        assert dag.stages == [["src"], ["p1", "p2", "p3"], ["sink"]]

    def test_linear_pipeline(self):
        dag = WorkflowDAG.linear_pipeline(["a", "b", "c"])
        assert dag.stages == [["a"], ["b"], ["c"]]
        assert dag.predecessors("b") == ["a"]
        assert dag.successors("b") == ["c"]

    def test_isolated_nodes_in_first_stage(self):
        dag = WorkflowDAG(["a", "b", "c"], [("a", "b")])
        assert sorted(dag.stages[0]) == ["a", "c"]

    def test_predecessors_unknown_node(self):
        dag = WorkflowDAG(["a"])
        with pytest.raises(KeyError):
            dag.predecessors("zzz")

    def test_stage_count_is_longest_path(self):
        # Diamond with a long tail: a->b->d, a->c->d, d->e
        dag = WorkflowDAG(
            ["a", "b", "c", "d", "e"],
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")],
        )
        assert len(dag.stages) == 4

    def test_all_nodes_appear_exactly_once_in_stages(self):
        dag = WorkflowDAG.fan_out_fan_in("s", ["x", "y"], "t")
        flattened = [n for stage in dag.stages for n in stage]
        assert sorted(flattened) == sorted(dag.nodes)
