"""Tests for trace generation and the nf-core workflow definitions."""

import numpy as np
import pytest

from repro.workflow.archetypes import ConstantHeavyTailMemory, LinearMemory
from repro.workflow.dag import WorkflowDAG
from repro.workflow.generator import TaskTypeSpec, WorkflowSpec, generate_trace
from repro.workflow.nfcore import (
    WORKFLOW_NAMES,
    build_all_traces,
    build_workflow_spec,
    build_workflow_trace,
)


def small_spec():
    return WorkflowSpec(
        "toy",
        [
            TaskTypeSpec("a", LinearMemory(slope=1.0, intercept_mb=100.0), 10,
                         input_median_mb=500.0),
            TaskTypeSpec("b", ConstantHeavyTailMemory(median_mb=300.0), 5,
                         input_median_mb=200.0),
        ],
    )


class TestSpecValidation:
    def test_rejects_duplicate_task_types(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowSpec(
                "w",
                [
                    TaskTypeSpec("a", LinearMemory(), 1),
                    TaskTypeSpec("a", LinearMemory(), 1),
                ],
            )

    def test_default_dag_is_pipeline(self):
        spec = small_spec()
        assert spec.dag.stages == [["a"], ["b"]]

    def test_dag_nodes_must_match_task_types(self):
        with pytest.raises(ValueError, match="disagree"):
            WorkflowSpec(
                "w",
                [TaskTypeSpec("a", LinearMemory(), 1)],
                dag=WorkflowDAG(["a", "ghost"]),
            )

    def test_invalid_instance_count(self):
        with pytest.raises(ValueError, match="n_instances"):
            TaskTypeSpec("a", LinearMemory(), 0)

    def test_preset_factor_must_cover(self):
        with pytest.raises(ValueError, match="preset_factor"):
            TaskTypeSpec("a", LinearMemory(), 1, preset_factor=0.5)


class TestGeneration:
    def test_counts_and_order(self):
        trace = generate_trace(small_spec(), seed=0)
        assert len(trace) == 15
        # Stage ordering: all of a before any of b (pipeline DAG).
        kinds = [i.task_type.name for i in trace]
        assert kinds.index("b") >= 10 or "b" not in kinds[:10]
        first_b = kinds.index("b")
        assert all(k == "a" for k in kinds[:first_b])

    def test_deterministic(self):
        t1 = generate_trace(small_spec(), seed=42)
        t2 = generate_trace(small_spec(), seed=42)
        assert [i.peak_memory_mb for i in t1] == [i.peak_memory_mb for i in t2]
        assert [i.instance_id for i in t1] == [i.instance_id for i in t2]

    def test_seed_changes_trace(self):
        t1 = generate_trace(small_spec(), seed=1)
        t2 = generate_trace(small_spec(), seed=2)
        assert [i.peak_memory_mb for i in t1] != [i.peak_memory_mb for i in t2]

    def test_presets_cover_all_peaks(self):
        trace = generate_trace(small_spec(), seed=3)
        for inst in trace:
            assert inst.task_type.preset_memory_mb >= inst.peak_memory_mb

    def test_presets_are_gb_multiples_with_floor(self):
        trace = generate_trace(small_spec(), seed=4)
        for t in trace.task_types:
            assert t.preset_memory_mb % 1024 == 0
            assert t.preset_memory_mb >= 4096.0

    def test_peaks_capped_below_machine(self):
        spec = small_spec()
        spec.max_memory_mb = 2048.0
        trace = generate_trace(spec, seed=5)
        assert max(i.peak_memory_mb for i in trace) <= 2048.0 * 0.85 + 1e-9

    def test_instance_ids_sequential(self):
        trace = generate_trace(small_spec(), seed=6)
        assert [i.instance_id for i in trace] == list(range(15))

    def test_machines_assigned_from_pool(self):
        spec = small_spec()
        spec.machines = ["m1", "m2"]
        trace = generate_trace(spec, seed=7)
        assert {i.machine for i in trace} <= {"m1", "m2"}


class TestNfcoreWorkflows:
    # Table I of the paper.
    TABLE_I = {
        "eager": (13, 121),
        "methylseq": (9, 100),
        "chipseq": (30, 82),
        "rnaseq": (30, 39),
        "mag": (8, 720),
        "iwd": (5, 332),
    }

    @pytest.mark.parametrize("name", WORKFLOW_NAMES)
    def test_table1_statistics(self, name):
        trace = build_workflow_trace(name, seed=0)
        stats = trace.stats()
        n_types, avg = self.TABLE_I[name]
        assert stats["n_task_types"] == n_types
        assert stats["avg_instances_per_type"] == pytest.approx(avg, rel=0.02)

    def test_unknown_workflow(self):
        with pytest.raises(ValueError, match="unknown workflow"):
            build_workflow_spec("nope")

    def test_prokka_instance_count_fig12(self):
        trace = build_workflow_trace("mag", seed=0)
        assert len(trace.instances_of("Prokka")) == 1171

    def test_markduplicates_linear_band_fig2(self):
        trace = build_workflow_trace("rnaseq", seed=0)
        md = trace.instances_of("MarkDuplicates")
        mems = np.array([i.peak_memory_mb for i in md]) / 1024.0
        assert 16.0 < np.percentile(mems, 5)
        assert np.percentile(mems, 95) < 24.0

    def test_baserecalibrator_bimodal_fig2(self):
        trace = build_workflow_trace("rnaseq", seed=0)
        br = np.array(
            [i.peak_memory_mb for i in trace.instances_of("BaseRecalibrator")]
        )
        assert (br < 1500).any() and (br > 2500).any()

    def test_lcextrap_band_fig1(self):
        trace = build_workflow_trace("eager", seed=0)
        lc = np.array([i.peak_memory_mb for i in trace.instances_of("lcextrap")])
        assert 150.0 < np.percentile(lc, 2)
        assert np.percentile(lc, 98) < 1500.0

    def test_scale_subsampling(self):
        full = build_workflow_trace("iwd", seed=0)
        small = build_workflow_trace("iwd", seed=0, scale=0.25)
        assert len(small) == pytest.approx(len(full) * 0.25, rel=0.1)
        assert {t.name for t in small.task_types} == {
            t.name for t in full.task_types
        }

    def test_trace_exports_the_spec_dag(self):
        spec = small_spec()
        trace = generate_trace(spec, seed=0)
        # One dependency source of truth: the scheduler sees exactly the
        # DAG that governed the generator's stage ordering.
        assert trace.dag is spec.dag

    def test_subsampled_trace_keeps_the_dag(self):
        trace = build_workflow_trace("iwd", seed=0, scale=0.1)
        assert trace.dag is not None
        assert set(trace.dag.nodes) == {t.name for t in trace.task_types}

    def test_submission_order_respects_exported_dag(self):
        trace = build_workflow_trace("eager", seed=0, scale=0.1)
        stage_of = {
            name: k
            for k, stage in enumerate(trace.dag.stages)
            for name in stage
        }
        stages_seen = [stage_of[i.task_type.name] for i in trace]
        assert stages_seen == sorted(stages_seen)

    def test_build_all(self):
        traces = build_all_traces(seed=0, scale=0.05)
        assert set(traces) == set(WORKFLOW_NAMES)
