"""Tests for the memory/runtime behaviour archetypes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow.archetypes import (
    ARCHETYPE_REGISTRY,
    BimodalMemory,
    ConstantHeavyTailMemory,
    LinearMemory,
    MemoryArchetype,
    PolynomialMemory,
    RuntimeModel,
    SaturatingMemory,
    SublinearMemory,
)

RNG = lambda: np.random.default_rng(0)  # noqa: E731


def sample_many(arch, input_mb, n=400, seed=0):
    rng = np.random.default_rng(seed)
    return np.array([arch.sample(input_mb, rng) for _ in range(n)])


class TestLinearMemory:
    def test_mean_follows_line(self):
        arch = LinearMemory(slope=4.0, intercept_mb=512.0, noise_frac=0.02)
        for x in (100.0, 1000.0, 5000.0):
            got = sample_many(arch, x).mean()
            assert got == pytest.approx(4.0 * x + 512.0, rel=0.02)

    def test_noise_scales_with_level(self):
        arch = LinearMemory(slope=1.0, intercept_mb=0.0, noise_frac=0.05)
        small = sample_many(arch, 100.0).std()
        large = sample_many(arch, 10000.0).std()
        assert large > 10 * small

    def test_positive_floor(self):
        arch = LinearMemory(slope=0.0, intercept_mb=1.0, noise_frac=3.0)
        assert sample_many(arch, 1.0).min() >= 16.0


class TestSublinearAndPolynomial:
    def test_sublinear_grows_slower_than_linear(self):
        arch = SublinearMemory(coef=10.0, exponent=0.5, intercept_mb=0.0, noise_frac=0.0)
        m1 = arch.sample(100.0, RNG())
        m2 = arch.sample(400.0, RNG())
        assert m2 == pytest.approx(2.0 * m1, rel=0.01)  # sqrt(4) = 2

    def test_polynomial_grows_faster_than_linear(self):
        arch = PolynomialMemory(coef=1.0, exponent=2.0, intercept_mb=0.0, noise_frac=0.0)
        m1 = arch.sample(10.0, RNG())
        m2 = arch.sample(20.0, RNG())
        assert m2 == pytest.approx(4.0 * m1, rel=0.01)


class TestBimodalMemory:
    def test_two_regimes(self):
        arch = BimodalMemory(
            threshold_mb=600.0, low_mb=800.0, high_mb=3000.0, slope=0.0, noise_frac=0.0
        )
        low = arch.sample(100.0, RNG())
        high = arch.sample(700.0, RNG())
        assert low == pytest.approx(800.0, rel=0.05)
        assert high == pytest.approx(3000.0, rel=0.05)

    def test_regime_gap_visible_in_distribution(self):
        # This is the BaseRecalibrator pathology (Fig. 2): a single linear
        # fit must misestimate one of the regimes.
        arch = BimodalMemory(threshold_mb=600.0, low_mb=800.0, high_mb=3000.0)
        rng = np.random.default_rng(1)
        inputs = rng.uniform(100, 1100, size=300)
        mems = np.array([arch.sample(x, rng) for x in inputs])
        assert (mems < 1500).any() and (mems > 2500).any()
        assert not ((mems > 1700) & (mems < 2300)).any()  # gap between modes


class TestConstantHeavyTail:
    def test_input_independent(self):
        arch = ConstantHeavyTailMemory(median_mb=550.0, sigma=0.35)
        a = sample_many(arch, 10.0, seed=3)
        b = sample_many(arch, 10000.0, seed=3)
        assert np.allclose(a, b)  # same RNG stream, input ignored

    def test_median_matches(self):
        arch = ConstantHeavyTailMemory(median_mb=550.0, sigma=0.35)
        med = np.median(sample_many(arch, 1.0, n=3000))
        assert med == pytest.approx(550.0, rel=0.05)

    def test_cap_enforced(self):
        arch = ConstantHeavyTailMemory(median_mb=500.0, sigma=2.0, cap_mb=1000.0)
        assert sample_many(arch, 1.0, n=1000).max() <= 1000.0


class TestSaturatingMemory:
    def test_monotone_towards_plateau(self):
        arch = SaturatingMemory(
            plateau_mb=5500.0, scale_mb=1500.0, half_input_mb=300.0, noise_frac=0.0
        )
        small = arch.sample(10.0, RNG())
        large = arch.sample(100000.0, RNG())
        assert small < large <= 5500.0 * 1.001

    def test_genomecov_band(self):
        # Fig. 1: genomecov sits in the 4-7 GB band.
        arch = SaturatingMemory()
        mems = sample_many(arch, 700.0, n=500)
        assert 3500.0 < np.percentile(mems, 5)
        assert np.percentile(mems, 95) < 7000.0


class TestRuntimeModel:
    def test_runtime_grows_with_input(self):
        rt = RuntimeModel(base_hours=0.01, hours_per_gb=0.5, jitter_sigma=0.0)
        r1, *_ = rt.sample(1024.0, RNG())
        r2, *_ = rt.sample(4096.0, RNG())
        assert r2 > r1

    def test_all_outputs_positive(self):
        rt = RuntimeModel()
        rng = np.random.default_rng(5)
        for _ in range(100):
            r, cpu, ior, iow = rt.sample(rng.uniform(1, 1e5), rng)
            assert r > 0 and cpu >= 1.0 and ior >= 0 and iow >= 0

    @given(st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_property_positive_for_any_input(self, x):
        r, cpu, ior, iow = RuntimeModel().sample(x, np.random.default_rng(1))
        assert r > 0 and cpu > 0


class TestRegistry:
    def test_registry_complete(self):
        assert set(ARCHETYPE_REGISTRY) == {
            "linear",
            "sublinear",
            "polynomial",
            "bimodal",
            "constant_heavy_tail",
            "saturating",
        }

    def test_registry_constructs(self):
        for cls in ARCHETYPE_REGISTRY.values():
            arch = cls()
            v = arch.sample(100.0, np.random.default_rng(0))
            assert v > 0


class TestBatchEquivalence:
    """``sample_batch`` must be bit-for-bit equal to the scalar loop.

    The generator's vectorized draws are only safe because each batched
    path consumes the RNG stream exactly like the historical
    per-instance calls; these tests pin that contract per archetype so a
    future edit cannot silently shift every golden trace.
    """

    INPUTS = np.array([1.0, 37.5, 512.0, 4096.0, 65536.0])

    @pytest.mark.parametrize("name", sorted(ARCHETYPE_REGISTRY))
    def test_memory_archetypes_bitwise(self, name):
        arch = ARCHETYPE_REGISTRY[name]()
        scalar = np.array(
            [
                arch.sample(float(x), np.random.default_rng(7))
                for x in self.INPUTS
            ]
        )
        # Scalar loop shares ONE stream in the real generator; replay
        # that exact consumption order too.
        rng = np.random.default_rng(7)
        looped = np.array([arch.sample(float(x), rng) for x in self.INPUTS])
        batched = arch.sample_batch(self.INPUTS, np.random.default_rng(7))
        per_row = np.array(
            [
                arch.sample_batch(np.array([x]), np.random.default_rng(7))[0]
                for x in self.INPUTS
            ]
        )
        np.testing.assert_array_equal(per_row, scalar)
        rng2 = np.random.default_rng(7)
        seq = np.concatenate(
            [arch.sample_batch(self.INPUTS[i : i + 1], rng2) for i in range(5)]
        )
        np.testing.assert_array_equal(seq, looped)
        np.testing.assert_array_equal(batched, looped)

    def test_runtime_model_bitwise(self):
        model = RuntimeModel()
        rng = np.random.default_rng(11)
        scalar = np.array([model.sample(float(x), rng) for x in self.INPUTS])
        batched = np.stack(
            model.sample_batch(self.INPUTS, np.random.default_rng(11)), axis=1
        )
        np.testing.assert_array_equal(batched, scalar)

    def test_base_class_fallback_loops_scalar(self):
        class Fixed(ConstantHeavyTailMemory):
            # A third-party archetype that only overrides sample() must
            # still batch correctly through the base-class fallback.
            def sample_batch(self, inputs_mb, rng):
                return MemoryArchetype.sample_batch(self, inputs_mb, rng)

        arch = Fixed()
        rng = np.random.default_rng(3)
        looped = np.array([arch.sample(float(x), rng) for x in self.INPUTS])
        got = arch.sample_batch(self.INPUTS, np.random.default_rng(3))
        np.testing.assert_array_equal(got, looped)
