"""Tests for the task-type / task-instance / trace data model."""

import numpy as np
import pytest

from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_type(name="fastqc", workflow="rnaseq", preset=4096.0):
    return TaskType(name=name, workflow=workflow, preset_memory_mb=preset)


def make_instance(tt=None, iid=0, input_mb=100.0, peak=500.0, rt=0.1):
    return TaskInstance(
        task_type=tt or make_type(),
        instance_id=iid,
        input_size_mb=input_mb,
        peak_memory_mb=peak,
        runtime_hours=rt,
    )


class TestTaskType:
    def test_key_is_workflow_qualified(self):
        assert make_type().key == "rnaseq/fastqc"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            TaskType(name="", workflow="x", preset_memory_mb=1.0)

    def test_rejects_nonpositive_preset(self):
        with pytest.raises(ValueError, match="preset_memory_mb"):
            TaskType(name="a", workflow="x", preset_memory_mb=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_type().name = "other"


class TestTaskInstance:
    def test_features_shape_and_value(self):
        inst = make_instance(input_mb=123.0)
        assert inst.features.shape == (1, 1)
        assert inst.features[0, 0] == 123.0

    def test_rejects_negative_input(self):
        with pytest.raises(ValueError, match="input_size_mb"):
            make_instance(input_mb=-1.0)

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ValueError, match="peak_memory_mb"):
            make_instance(peak=0.0)

    def test_rejects_nonpositive_runtime(self):
        with pytest.raises(ValueError, match="runtime_hours"):
            make_instance(rt=0.0)


class TestWorkflowTrace:
    def _trace(self):
        a = make_type("align")
        b = make_type("sort")
        insts = [make_instance(a, 0), make_instance(b, 1), make_instance(a, 2)]
        return WorkflowTrace("rnaseq", insts)

    def test_len_and_iter(self):
        tr = self._trace()
        assert len(tr) == 3
        assert [i.instance_id for i in tr] == [0, 1, 2]

    def test_task_types_first_appearance_order(self):
        tr = self._trace()
        assert [t.name for t in tr.task_types] == ["align", "sort"]

    def test_instances_of(self):
        tr = self._trace()
        assert len(tr.instances_of("align")) == 2
        assert len(tr.instances_of("sort")) == 1
        assert tr.instances_of("nope") == []

    def test_rejects_foreign_workflow_instance(self):
        alien = make_instance(make_type("x", workflow="other"), 5)
        with pytest.raises(ValueError, match="belongs to workflow"):
            WorkflowTrace("rnaseq", [alien])

    def test_stats(self):
        s = self._trace().stats()
        assert s["n_task_types"] == 2
        assert s["n_instances"] == 3
        assert s["avg_instances_per_type"] == pytest.approx(1.5)

    def test_dag_field_defaults_to_none(self):
        tr = WorkflowTrace("rnaseq", [make_instance()])
        assert tr.dag is None

    def test_dag_validated_against_instances(self):
        from repro.workflow.dag import WorkflowDAG

        with pytest.raises(ValueError, match="not a node"):
            WorkflowTrace(
                "rnaseq", [make_instance()], dag=WorkflowDAG(["other"])
            )

    def test_subsample_propagates_dag(self):
        from repro.workflow.dag import WorkflowDAG

        tt = make_type("only")
        insts = [make_instance(tt, i) for i in range(40)]
        dag = WorkflowDAG(["only"])
        sub = WorkflowTrace("rnaseq", insts, dag=dag).subsample(0.25, seed=1)
        assert sub.dag is dag

    def test_subsample_preserves_order_and_types(self):
        tt = make_type("only")
        insts = [make_instance(tt, i) for i in range(40)]
        tr = WorkflowTrace("rnaseq", insts)
        sub = tr.subsample(0.25, seed=1)
        ids = [i.instance_id for i in sub]
        assert ids == sorted(ids)
        assert len(sub) == 10
        assert {t.name for t in sub.task_types} == {"only"}

    def test_subsample_keeps_minimum_two_per_type(self):
        tt = make_type("rare")
        tr = WorkflowTrace("rnaseq", [make_instance(tt, i) for i in range(3)])
        sub = tr.subsample(0.01, seed=0)
        assert len(sub) == 2

    def test_subsample_identity_at_one(self):
        tr = self._trace()
        assert tr.subsample(1.0) is tr

    def test_subsample_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            self._trace().subsample(0.0)

    def test_subsample_deterministic(self):
        tt = make_type("t")
        tr = WorkflowTrace("rnaseq", [make_instance(tt, i) for i in range(50)])
        a = [i.instance_id for i in tr.subsample(0.3, seed=7)]
        b = [i.instance_id for i in tr.subsample(0.3, seed=7)]
        assert a == b
