"""Tests for trace serialisation (JSON round-trip, CSV export)."""

import csv
import json

import pytest

from repro.workflow.io import (
    export_csv,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.workflow.nfcore import build_workflow_trace
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


@pytest.fixture
def small_trace():
    return build_workflow_trace("iwd", seed=1, scale=0.05)


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self, small_trace):
        restored = trace_from_dict(trace_to_dict(small_trace))
        assert restored.workflow == small_trace.workflow
        assert len(restored) == len(small_trace)
        for a, b in zip(small_trace, restored):
            assert a.task_type.name == b.task_type.name
            assert a.task_type.preset_memory_mb == b.task_type.preset_memory_mb
            assert a.instance_id == b.instance_id
            assert a.peak_memory_mb == b.peak_memory_mb
            assert a.runtime_hours == b.runtime_hours
            assert a.machine == b.machine

    def test_file_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(small_trace, path)
        restored = load_trace(path)
        assert len(restored) == len(small_trace)
        # The file is valid JSON with the declared schema header.
        data = json.loads(path.read_text())
        assert data["format"] == "repro-trace"
        assert data["version"] == 1

    def test_dag_roundtrips(self, small_trace):
        assert small_trace.dag is not None
        restored = trace_from_dict(trace_to_dict(small_trace))
        assert restored.dag is not None
        assert restored.dag.nodes == small_trace.dag.nodes
        assert sorted(restored.dag.edges) == sorted(small_trace.dag.edges)

    def test_dagless_trace_roundtrips_without_dag_key(self):
        tt = TaskType(name="t", workflow="wf", preset_memory_mb=4096.0)
        trace = WorkflowTrace(
            "wf",
            [
                TaskInstance(
                    task_type=tt,
                    instance_id=0,
                    input_size_mb=1.0,
                    peak_memory_mb=1.0,
                    runtime_hours=1.0,
                )
            ],
        )
        data = trace_to_dict(trace)
        assert "dag" not in data
        assert trace_from_dict(data).dag is None

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-trace"):
            trace_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, small_trace):
        doc = trace_to_dict(small_trace)
        doc["version"] = 99
        with pytest.raises(ValueError, match="unsupported trace version"):
            trace_from_dict(doc)

    def test_rejects_dangling_task_type(self, small_trace):
        doc = trace_to_dict(small_trace)
        doc["instances"][0]["task_type"] = "ghost"
        with pytest.raises(ValueError, match="unknown task type"):
            trace_from_dict(doc)

    def test_restored_trace_simulates(self, small_trace, tmp_path):
        from repro.baselines import WorkflowPresets
        from repro.sim import OnlineSimulator

        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        res = OnlineSimulator(load_trace(path)).run(WorkflowPresets())
        assert res.num_tasks == len(small_trace)
        assert res.num_failures == 0


class TestCsvExport:
    def test_csv_rows_and_header(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        export_csv(small_trace, path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:3] == ["workflow", "task_type", "instance_id"]
        assert len(rows) == len(small_trace) + 1
        assert rows[1][0] == "iwd"

    def test_csv_values_match(self, tmp_path):
        tt = TaskType(name="x", workflow="wf", preset_memory_mb=4096.0)
        trace = WorkflowTrace(
            "wf",
            [
                TaskInstance(
                    task_type=tt,
                    instance_id=0,
                    input_size_mb=10.0,
                    peak_memory_mb=100.0,
                    runtime_hours=0.5,
                    machine="m1",
                )
            ],
        )
        path = tmp_path / "one.csv"
        export_csv(trace, path)
        with open(path) as fh:
            row = list(csv.DictReader(fh))[0]
        assert row["task_type"] == "x"
        assert float(row["peak_memory_mb"]) == 100.0
        assert row["machine"] == "m1"
