"""Tests for trace serialisation (JSON/JSONL round-trip, CSV export)."""

import csv
import json

import pytest

from repro.workflow.io import (
    TraceFormatError,
    export_csv,
    import_csv,
    iter_trace_jsonl,
    load_trace,
    load_trace_jsonl,
    save_trace,
    save_trace_jsonl,
    trace_from_dict,
    trace_to_dict,
)
from repro.workflow.nfcore import build_workflow_trace
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


@pytest.fixture
def small_trace():
    return build_workflow_trace("iwd", seed=1, scale=0.05)


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self, small_trace):
        restored = trace_from_dict(trace_to_dict(small_trace))
        assert restored.workflow == small_trace.workflow
        assert len(restored) == len(small_trace)
        for a, b in zip(small_trace, restored):
            assert a.task_type.name == b.task_type.name
            assert a.task_type.preset_memory_mb == b.task_type.preset_memory_mb
            assert a.instance_id == b.instance_id
            assert a.peak_memory_mb == b.peak_memory_mb
            assert a.runtime_hours == b.runtime_hours
            assert a.machine == b.machine

    def test_file_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(small_trace, path)
        restored = load_trace(path)
        assert len(restored) == len(small_trace)
        # The file is valid JSON with the declared schema header.
        data = json.loads(path.read_text())
        assert data["format"] == "repro-trace"
        assert data["version"] == 1

    def test_dag_roundtrips(self, small_trace):
        assert small_trace.dag is not None
        restored = trace_from_dict(trace_to_dict(small_trace))
        assert restored.dag is not None
        assert restored.dag.nodes == small_trace.dag.nodes
        assert sorted(restored.dag.edges) == sorted(small_trace.dag.edges)

    def test_dagless_trace_roundtrips_without_dag_key(self):
        tt = TaskType(name="t", workflow="wf", preset_memory_mb=4096.0)
        trace = WorkflowTrace(
            "wf",
            [
                TaskInstance(
                    task_type=tt,
                    instance_id=0,
                    input_size_mb=1.0,
                    peak_memory_mb=1.0,
                    runtime_hours=1.0,
                )
            ],
        )
        data = trace_to_dict(trace)
        assert "dag" not in data
        assert trace_from_dict(data).dag is None

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-trace"):
            trace_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, small_trace):
        doc = trace_to_dict(small_trace)
        doc["version"] = 99
        with pytest.raises(ValueError, match="unsupported trace version"):
            trace_from_dict(doc)

    def test_rejects_dangling_task_type(self, small_trace):
        doc = trace_to_dict(small_trace)
        doc["instances"][0]["task_type"] = "ghost"
        with pytest.raises(ValueError, match="unknown task type"):
            trace_from_dict(doc)

    def test_restored_trace_simulates(self, small_trace, tmp_path):
        from repro.baselines import WorkflowPresets
        from repro.sim import OnlineSimulator

        path = tmp_path / "t.json"
        save_trace(small_trace, path)
        res = OnlineSimulator(load_trace(path)).run(WorkflowPresets())
        assert res.num_tasks == len(small_trace)
        assert res.num_failures == 0


class TestTraceFormatErrors:
    """Schema violations raise the typed error naming the bad key/path."""

    def test_wrong_format_is_typed(self):
        with pytest.raises(TraceFormatError, match="format"):
            trace_from_dict({"format": "something-else"})

    def test_missing_workflow_key(self, small_trace):
        doc = trace_to_dict(small_trace)
        del doc["workflow"]
        with pytest.raises(TraceFormatError, match="'workflow'"):
            trace_from_dict(doc)

    def test_missing_instance_field_names_path(self, small_trace):
        doc = trace_to_dict(small_trace)
        del doc["instances"][3]["peak_memory_mb"]
        with pytest.raises(TraceFormatError, match="'peak_memory_mb'") as exc:
            trace_from_dict(doc)
        assert exc.value.path == "instances[3]"

    def test_non_numeric_field_names_path(self, small_trace):
        doc = trace_to_dict(small_trace)
        doc["instances"][1]["runtime_hours"] = "soon"
        with pytest.raises(TraceFormatError, match="runtime_hours") as exc:
            trace_from_dict(doc)
        assert exc.value.path == "instances[1].runtime_hours"

    def test_missing_task_type_preset_names_path(self, small_trace):
        doc = trace_to_dict(small_trace)
        del doc["task_types"][0]["preset_memory_mb"]
        with pytest.raises(TraceFormatError, match="preset_memory_mb") as exc:
            trace_from_dict(doc)
        assert "task_types[0]" in str(exc.value)

    def test_unsupported_version_is_typed(self, small_trace):
        doc = trace_to_dict(small_trace)
        doc["version"] = 99
        with pytest.raises(TraceFormatError, match="unsupported trace version"):
            trace_from_dict(doc)

    def test_invalid_json_file_is_typed(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("][")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_trace(path)

    def test_typed_error_is_a_value_error(self):
        # Callers catching the historical ValueError keep working.
        assert issubclass(TraceFormatError, ValueError)


class TestSchemaV2:
    def _trace_with_edges(self):
        tt = TaskType(name="t", workflow="wf", preset_memory_mb=4096.0)
        instances = [
            TaskInstance(
                task_type=tt, instance_id=i, input_size_mb=1.0,
                peak_memory_mb=10.0, runtime_hours=0.1,
            )
            for i in range(3)
        ]
        return WorkflowTrace(
            "wf", instances, instance_edges=[(0, 1), (1, 2)]
        )

    def test_instance_edges_promote_to_v2(self):
        doc = trace_to_dict(self._trace_with_edges())
        assert doc["version"] == 2
        assert doc["instance_edges"] == [[0, 1], [1, 2]]

    def test_edge_free_trace_stays_v1(self, small_trace):
        assert trace_to_dict(small_trace)["version"] == 1

    def test_v2_roundtrip(self, tmp_path):
        trace = self._trace_with_edges()
        path = tmp_path / "v2.json"
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.instance_edges == [(0, 1), (1, 2)]

    def test_bad_instance_edge_pair_names_path(self):
        doc = trace_to_dict(self._trace_with_edges())
        doc["instance_edges"][1] = ["x", "y", "z"]
        with pytest.raises(TraceFormatError) as exc:
            trace_from_dict(doc)
        assert exc.value.path == "instance_edges[1]"

    def test_dangling_instance_edge_rejected(self):
        doc = trace_to_dict(self._trace_with_edges())
        doc["instance_edges"].append([0, 99])
        with pytest.raises(TraceFormatError, match="not present"):
            trace_from_dict(doc)

    def test_subsample_filters_instance_edges(self):
        trace = build_workflow_trace("iwd", seed=1, scale=0.2)
        ids = [i.instance_id for i in trace]
        trace = WorkflowTrace(
            trace.workflow,
            trace.instances,
            dag=trace.dag,
            instance_edges=list(zip(ids[:-1], ids[1:])),
        )
        sub = trace.subsample(0.5, seed=0)
        kept = {i.instance_id for i in sub}
        assert sub.instance_edges is not None
        assert all(u in kept and v in kept for u, v in sub.instance_edges)


class TestJsonl:
    def test_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        restored = load_trace_jsonl(path)
        assert len(restored) == len(small_trace)
        assert all(a == b for a, b in zip(small_trace, restored))
        assert restored.dag is not None

    def test_streaming_iterator_is_lazy(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        header, instances = iter_trace_jsonl(path)
        assert header["workflow"] == "iwd"
        first = next(instances)
        assert first == small_trace.instances[0]

    def test_empty_file_is_typed_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            iter_trace_jsonl(path)

    def test_bad_line_names_line_number(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(small_trace, path)
        with open(path, "a") as fh:
            fh.write("{broken\n")
        _, instances = iter_trace_jsonl(path)
        with pytest.raises(TraceFormatError, match="line"):
            list(instances)


class TestCsvExport:
    def test_csv_rows_and_header(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        export_csv(small_trace, path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:3] == ["workflow", "task_type", "instance_id"]
        assert len(rows) == len(small_trace) + 1
        assert rows[1][0] == "iwd"

    def test_csv_values_match(self, tmp_path):
        tt = TaskType(name="x", workflow="wf", preset_memory_mb=4096.0)
        trace = WorkflowTrace(
            "wf",
            [
                TaskInstance(
                    task_type=tt,
                    instance_id=0,
                    input_size_mb=10.0,
                    peak_memory_mb=100.0,
                    runtime_hours=0.5,
                    machine="m1",
                )
            ],
        )
        path = tmp_path / "one.csv"
        export_csv(trace, path)
        with open(path) as fh:
            row = list(csv.DictReader(fh))[0]
        assert row["task_type"] == "x"
        assert float(row["peak_memory_mb"]) == 100.0
        assert row["machine"] == "m1"

    def test_export_import_roundtrip(self, small_trace, tmp_path):
        """The load side of export_csv: every instance field survives."""
        path = tmp_path / "rt.csv"
        export_csv(small_trace, path)
        restored = import_csv(path)
        assert restored.workflow == small_trace.workflow
        assert len(restored) == len(small_trace)
        for a, b in zip(small_trace, restored):
            assert a.task_type.name == b.task_type.name
            assert a.instance_id == b.instance_id
            assert a.input_size_mb == b.input_size_mb
            assert a.peak_memory_mb == b.peak_memory_mb
            assert a.runtime_hours == b.runtime_hours
            assert a.cpu_percent == b.cpu_percent
            assert a.io_read_mb == b.io_read_mb
            assert a.io_write_mb == b.io_write_mb
            assert a.machine == b.machine

    def test_import_presets_ceil_observed_peaks(self, tmp_path):
        tt = TaskType(name="x", workflow="wf", preset_memory_mb=9999.0)
        trace = WorkflowTrace(
            "wf",
            [
                TaskInstance(
                    task_type=tt, instance_id=0, input_size_mb=1.0,
                    peak_memory_mb=1500.0, runtime_hours=0.1,
                )
            ],
        )
        path = tmp_path / "p.csv"
        export_csv(trace, path)
        restored = import_csv(path)
        # presets are not part of the CSV; reconstructed as ceil-to-GB
        assert restored.task_types[0].preset_memory_mb == 2048.0

    def test_import_missing_column_is_typed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("workflow,task_type\nwf,x\n")
        with pytest.raises(TraceFormatError, match="missing required columns"):
            import_csv(path)

    def test_import_empty_csv_is_typed(self, tmp_path):
        path = tmp_path / "empty.csv"
        header = ("workflow,task_type,instance_id,input_size_mb,"
                  "peak_memory_mb,runtime_hours,cpu_percent,io_read_mb,"
                  "io_write_mb,machine\n")
        path.write_text(header)
        with pytest.raises(TraceFormatError, match="no instance rows"):
            import_csv(path)

    def test_imported_trace_simulates(self, small_trace, tmp_path):
        from repro.baselines import WorkflowPresets
        from repro.sim import OnlineSimulator

        path = tmp_path / "sim.csv"
        export_csv(small_trace, path)
        res = OnlineSimulator(import_csv(path)).run(WorkflowPresets())
        assert res.num_tasks == len(small_trace)
