"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--workflow", "iwd"])
        args_d = vars(args)
        assert args_d["method"] == "Sizey"
        assert args_d["scale"] == 1.0
        assert args_d["ttf"] == 1.0

    def test_rejects_unknown_workflow(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workflow", "nope"])

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--only", "fig99"])

    def test_backend_defaults_to_replay(self):
        args = build_parser().parse_args(["simulate", "--workflow", "iwd"])
        assert vars(args)["backend"] == "replay"

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd", "--backend", "nope"]
            )

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_cluster_options_default_off(self):
        args = build_parser().parse_args(["simulate", "--workflow", "iwd"])
        assert args.cluster is None
        assert args.placement == "first-fit"
        assert args.arrival is None

    def test_rejects_bad_cluster_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd", "--cluster", "lots:4"]
            )

    def test_rejects_bad_arrival_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd", "--arrival", "fractal:2"]
            )

    def test_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd", "--placement", "psychic"]
            )

    def test_arrival_requires_event_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd",
                  "--arrival", "poisson:0.5"])
        assert "--backend event" in capsys.readouterr().err

    def test_arrival_and_interval_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--arrival", "poisson:0.5", "--arrival-interval", "0.5"])
        assert "mutually" in capsys.readouterr().err

    def test_dag_options_default_off(self):
        args = build_parser().parse_args(["simulate", "--workflow", "iwd"])
        assert args.dag is None
        assert args.workflow_arrival is None

    def test_rejects_bad_workflow_arrival_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd",
                 "--workflow-arrival", "many@often"]
            )

    def test_rejects_unknown_dag_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd", "--dag", "spaghetti"]
            )

    def test_dag_requires_event_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--dag", "trace"])
        assert "--backend event" in capsys.readouterr().err

    def test_workflow_arrival_conflicts_with_task_arrival(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--workflow-arrival", "2", "--arrival", "poisson:0.5"])
        assert "replaces per-task arrivals" in capsys.readouterr().err

    def test_dag_conflicts_with_task_arrival(self, capsys):
        # --dag must not be silently dropped in favour of --arrival.
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--dag", "linear", "--arrival", "poisson:5"])
        assert "replaces per-task arrivals" in capsys.readouterr().err

    def test_dag_conflicts_with_arrival_interval(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--dag", "trace", "--arrival-interval", "0.5"])
        assert "replaces per-task arrivals" in capsys.readouterr().err


class TestCommands:
    def test_simulate_prints_metrics(self, capsys):
        rc = main(
            ["simulate", "--workflow", "iwd", "--method", "Workflow-Presets",
             "--scale", "0.05"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "wastage GBh" in out
        assert "failures" in out

    def test_trace_writes_json_and_csv(self, tmp_path, capsys):
        out_json = tmp_path / "t.json"
        out_csv = tmp_path / "t.csv"
        rc = main(
            ["trace", "--workflow", "iwd", "--scale", "0.05",
             "--out", str(out_json), "--csv", str(out_csv)]
        )
        assert rc == 0
        data = json.loads(out_json.read_text())
        assert data["workflow"] == "iwd"
        assert out_csv.exists()
        assert "wrote JSON trace" in capsys.readouterr().out

    def test_compare_renders_all_methods(self, capsys):
        rc = main(
            ["compare", "--workflows", "iwd", "--scale", "0.05"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        for m in ("Sizey", "Witt-Wastage", "Workflow-Presets"):
            assert m in out

    def test_simulate_event_backend_prints_cluster_metrics(self, capsys):
        rc = main(
            ["simulate", "--workflow", "iwd", "--method", "Workflow-Presets",
             "--scale", "0.05", "--backend", "event"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "makespan h" in out
        assert "mean queue wait h" in out
        assert "mean node utilization" in out

    def test_compare_event_backend_end_to_end(self, capsys):
        rc = main(
            ["compare", "--workflows", "iwd", "--scale", "0.05",
             "--backend", "event"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "makespan h" in out
        assert "backend=event" in out

    def test_figures_single_artifact(self, capsys):
        rc = main(["figures", "--only", "table1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table I" in out

    def test_simulate_heterogeneous_cluster_end_to_end(self, capsys):
        rc = main(
            ["simulate", "--workflow", "iwd", "--method", "Workflow-Presets",
             "--scale", "0.05", "--backend", "event",
             "--cluster", "128g:4,256g:4", "--placement", "best-fit",
             "--arrival", "poisson:0.5"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # Per-node utilization labelled with each node's own capacity.
        assert "node 0 utilization (128G)" in out
        assert "node 4 utilization (256G)" in out

    def test_compare_heterogeneous_cluster(self, capsys):
        rc = main(
            ["compare", "--workflows", "iwd", "--scale", "0.05",
             "--backend", "event", "--cluster", "64g:2,128g:2",
             "--placement", "worst-fit"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "makespan h" in out

    def test_simulate_dag_prints_per_workflow_rows(self, capsys):
        rc = main(
            ["simulate", "--workflow", "iwd", "--method", "Workflow-Presets",
             "--scale", "0.05", "--backend", "event", "--dag", "trace",
             "--workflow-arrival", "2@fixed:0.5",
             "--cluster", "64g:2,128g:2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "workflow instances" in out
        assert "mean stretch" in out
        assert "per-workflow-instance metrics" in out
        assert "iwd#0" in out and "iwd#1" in out
        assert "user0" in out and "user1" in out

    def test_simulate_dag_without_workflow_arrival(self, capsys):
        rc = main(
            ["simulate", "--workflow", "iwd", "--method", "Workflow-Presets",
             "--scale", "0.05", "--backend", "event", "--dag", "linear"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "iwd#0" in out

    def test_compare_dag_adds_stretch_column(self, capsys):
        rc = main(
            ["compare", "--workflows", "iwd", "--scale", "0.05",
             "--backend", "event", "--dag", "trace",
             "--workflow-arrival", "2", "--cluster", "64g:2,128g:2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean wf makespan h" in out
        assert "mean stretch" in out


class TestWorkloadOption:
    def test_simulate_requires_some_workload(self, capsys):
        # Enforced in validation rather than at parse time, so --resume
        # can restore the workload from a checkpoint instead.
        with pytest.raises(SystemExit):
            main(["simulate", "--method", "Sizey"])

    def test_workflow_and_workload_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workflow", "iwd",
                 "--workload", "synthetic:iwd"]
            )

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workload", "carrier-pigeon:x"]
            )

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workload", f"trace:{tmp_path}/ghost.json"]
            )

    def test_simulate_workload_synthetic_matches_workflow_alias(self, capsys):
        rc = main(
            ["simulate", "--workload", "synthetic:iwd", "--method",
             "Workflow-Presets", "--scale", "0.05"]
        )
        via_workload = capsys.readouterr().out
        assert rc == 0
        rc = main(
            ["simulate", "--workflow", "iwd", "--method",
             "Workflow-Presets", "--scale", "0.05"]
        )
        via_workflow = capsys.readouterr().out
        assert rc == 0
        # identical metrics; only the workload label differs
        strip = (
            lambda text: [
                line for line in text.splitlines()
                if not line.startswith("workload")
            ]
        )
        assert strip(via_workload) == strip(via_workflow)

    def test_simulate_trace_file_workload(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert main(
            ["trace", "--workflow", "iwd", "--scale", "0.05",
             "--out", str(path)]
        ) == 0
        capsys.readouterr()
        rc = main(
            ["simulate", "--workload", f"trace:{path}",
             "--method", "Workflow-Presets"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"trace:{path}" in out

    def test_trace_writes_jsonl_and_wfcommons(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        wfc = tmp_path / "wf.json"
        rc = main(
            ["trace", "--workflow", "iwd", "--scale", "0.05",
             "--jsonl", str(jsonl), "--wfcommons", str(wfc)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "wrote JSONL trace" in out
        assert "wrote WfCommons instance" in out
        # header line + one line per instance
        assert len(jsonl.read_text().splitlines()) > 1
        doc = json.loads(wfc.read_text())
        assert doc["schemaVersion"] == "1.5"
        assert doc["workflow"]["specification"]["tasks"]

    def test_compare_workloads_specs(self, tmp_path, capsys):
        wfc = tmp_path / "wf.json"
        assert main(
            ["trace", "--workflow", "iwd", "--scale", "0.05",
             "--wfcommons", str(wfc)]
        ) == 0
        capsys.readouterr()
        rc = main(
            ["compare", "--workloads", f"wfcommons:{wfc}",
             "--backend", "event"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sizey" in out
        assert f"wfcommons:{wfc}" in out

    def test_compare_workflows_and_workloads_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--workflows", "iwd",
                 "--workloads", "synthetic:iwd"]
            )

    def test_figures_wfcommons_replay_artifact_listed(self):
        args = build_parser().parse_args(
            ["figures", "--only", "wfcommons-replay"]
        )
        assert args.only == ["wfcommons-replay"]


class TestScaleOptions:
    def test_scale_flags_require_event_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--stream-collectors"])
        assert "--backend event" in capsys.readouterr().err

    def test_resume_excludes_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--resume", "x.ckpt"])
        assert "checkpoint" in capsys.readouterr().err

    def test_stop_after_needs_checkpoint(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--stop-after", "1.0"])
        assert "--checkpoint" in capsys.readouterr().err

    def test_shards_exclude_checkpointing(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--shards", "2", "--checkpoint", "x.ckpt"])
        assert "--shards" in capsys.readouterr().err

    def test_shards_exclude_node_outage(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--shards", "2", "--node-outage", "0.1:1:0"])
        assert "--node-outage" in capsys.readouterr().err

    def test_rejects_nonpositive_checkpoint_every(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--workflow", "iwd", "--backend", "event",
                  "--checkpoint", "x.ckpt", "--checkpoint-every", "0"])
        assert "must be > 0" in capsys.readouterr().err

    def test_stream_collectors_end_to_end(self, capsys):
        rc = main(["simulate", "--workflow", "iwd", "--scale", "0.05",
                   "--method", "Workflow-Presets", "--backend", "event",
                   "--stream-collectors"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wastage GBh" in out

    def test_sharded_simulate_end_to_end(self, capsys):
        rc = main(["simulate", "--workflow", "iwd", "--scale", "0.05",
                   "--method", "Workflow-Presets", "--backend", "event",
                   "--cluster", "64g:2", "--shards", "2",
                   "--shard-workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shards" in out

    def test_checkpoint_resume_summary_round_trip(self, tmp_path, capsys):
        common = ["--workflow", "iwd", "--scale", "0.05",
                  "--method", "Workflow-Presets", "--backend", "event",
                  "--cluster", "64g:2", "--arrival", "poisson:600"]
        full = tmp_path / "full.json"
        rc = main(["simulate", *common, "--summary-json", str(full)])
        assert rc == 0
        capsys.readouterr()

        ck = tmp_path / "state.ckpt"
        rc = main(["simulate", *common,
                   "--checkpoint", str(ck), "--stop-after", "0.05"])
        assert rc == 0
        assert "paused" in capsys.readouterr().out
        assert ck.exists()

        resumed = tmp_path / "resumed.json"
        rc = main(["simulate", "--resume", str(ck),
                   "--summary-json", str(resumed)])
        assert rc == 0
        assert resumed.read_text() == full.read_text()


class TestServeCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8713
        assert args.max_tenants == 64

    def test_client_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client"])

    def test_client_predict_requires_task_fields(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["client", "predict", "--tenant", "a"]
            )

    def test_loadgen_validates_workload_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--workload", "bogus:nope"]
            )

    def test_client_predict_against_live_server(self, capsys):
        from repro.serve.server import ServerThread

        with ServerThread() as srv:
            rc = main(
                ["client", "predict", "--host", srv.host,
                 "--port", str(srv.port), "--tenant", "cli",
                 "--task-type", "align", "--input-mb", "512"]
            )
            out = capsys.readouterr().out
            assert rc == 0
            assert '"estimate_mb": 4096.0' in out
            rc = main(
                ["client", "observe", "--host", srv.host,
                 "--port", str(srv.port), "--tenant", "cli",
                 "--task-type", "align", "--input-mb", "512",
                 "--peak-mb", "2000"]
            )
            out = capsys.readouterr().out
            assert rc == 0
            assert '"n_observed": 1' in out

    def test_loadgen_against_live_server(self, tmp_path, capsys):
        import json

        from repro.serve.server import ServerThread

        out_json = tmp_path / "report.json"
        with ServerThread() as srv:
            rc = main(
                ["loadgen", "--host", srv.host, "--port", str(srv.port),
                 "--workload", "synthetic:eager", "--tenants", "2",
                 "--rate", "1000", "--max-tasks", "32",
                 "--json", str(out_json)]
            )
        out = capsys.readouterr().out
        assert rc == 0
        assert "loadgen report" in out
        report = json.loads(out_json.read_text())
        assert report["n_tasks"] == 32
        assert report["n_errors"] == 0
