"""Tests for WorkflowInstance, ReadySetScheduler, and WorkflowArrivals."""

import numpy as np
import pytest

from repro.sched import (
    ReadySetScheduler,
    WorkflowArrivals,
    WorkflowInstance,
    parse_workflow_arrival,
)
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, TaskType


def make_tasks(spec, workflow="wf"):
    """``spec`` maps task-type name -> (count, runtime_hours)."""
    tasks = []
    instance_id = 0
    for name, (count, runtime) in spec.items():
        tt = TaskType(name=name, workflow=workflow, preset_memory_mb=4096.0)
        for _ in range(count):
            tasks.append(
                TaskInstance(
                    task_type=tt,
                    instance_id=instance_id,
                    input_size_mb=100.0,
                    peak_memory_mb=1000.0,
                    runtime_hours=runtime,
                )
            )
            instance_id += 1
    return tasks


def make_wi(dag, spec, key="wf#0", **kwargs):
    return WorkflowInstance(
        key=key, workflow="wf", dag=dag, tasks=make_tasks(spec), **kwargs
    )


class TestWorkflowInstance:
    def test_rejects_task_type_outside_dag(self):
        dag = WorkflowDAG(["a"])
        with pytest.raises(ValueError, match="not a node"):
            make_wi(dag, {"b": (1, 1.0)})

    def test_roots_released_first(self):
        dag = WorkflowDAG.linear_pipeline(["a", "b"])
        wi = make_wi(dag, {"a": (2, 1.0), "b": (1, 1.0)})
        ready = wi.release_roots()
        assert [t.task_type.name for t in ready] == ["a", "a"]
        assert wi.is_released("a") and not wi.is_released("b")

    def test_multi_root_release(self):
        dag = WorkflowDAG(["a", "b", "c"], [("a", "c"), ("b", "c")])
        wi = make_wi(dag, {"a": (1, 1.0), "b": (1, 1.0), "c": (1, 1.0)})
        ready = wi.release_roots()
        assert sorted(t.task_type.name for t in ready) == ["a", "b"]

    def test_successor_held_until_all_instances_succeed(self):
        dag = WorkflowDAG.linear_pipeline(["a", "b"])
        wi = make_wi(dag, {"a": (3, 1.0), "b": (1, 1.0)})
        wi.release_roots()
        assert wi.complete("a") == []
        assert wi.complete("a") == []
        released = wi.complete("a")
        assert [t.task_type.name for t in released] == ["b"]

    def test_diamond_sink_needs_both_branches(self):
        dag = WorkflowDAG(
            ["a", "b", "c", "d"],
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        wi = make_wi(
            dag, {"a": (1, 1.0), "b": (1, 1.0), "c": (1, 1.0), "d": (1, 1.0)}
        )
        wi.release_roots()
        both = wi.complete("a")
        assert sorted(t.task_type.name for t in both) == ["b", "c"]
        assert wi.complete("b") == []  # c still outstanding
        assert [t.task_type.name for t in wi.complete("c")] == ["d"]
        wi.complete("d")
        assert wi.done

    def test_empty_type_cascades(self):
        # b has no instances in this run; c must still be reachable.
        dag = WorkflowDAG.linear_pipeline(["a", "b", "c"])
        wi = make_wi(dag, {"a": (1, 1.0), "c": (1, 1.0)})
        wi.release_roots()
        released = wi.complete("a")
        assert [t.task_type.name for t in released] == ["c"]

    def test_complete_unknown_or_exhausted_type(self):
        dag = WorkflowDAG(["a"])
        wi = make_wi(dag, {"a": (1, 1.0)})
        wi.release_roots()
        with pytest.raises(KeyError):
            wi.complete("zzz")
        wi.complete("a")
        with pytest.raises(ValueError, match="already"):
            wi.complete("a")

    def test_critical_path_is_heaviest_path_of_type_maxima(self):
        # a(2h) -> b(1h) -> d(1h) and a -> c(5h) -> d: bound = 2+5+1.
        dag = WorkflowDAG(
            ["a", "b", "c", "d"],
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        wi = make_wi(
            dag, {"a": (1, 2.0), "b": (4, 1.0), "c": (2, 5.0), "d": (1, 1.0)}
        )
        assert wi.critical_path_hours() == pytest.approx(8.0)

    def test_critical_path_empty_workflow(self):
        wi = WorkflowInstance(
            key="empty#0", workflow="wf", dag=WorkflowDAG(["a"]), tasks=[]
        )
        assert wi.critical_path_hours() == 0.0
        assert wi.done


class TestReadySetScheduler:
    def _states(self, wi):
        return {t.instance_id: f"st-{t.instance_id}" for t in wi.tasks}

    def test_admit_requires_all_states(self):
        dag = WorkflowDAG(["a"])
        wi = make_wi(dag, {"a": (2, 1.0)})
        sched = ReadySetScheduler()
        with pytest.raises(ValueError, match="missing states"):
            sched.admit(wi, {})

    def test_fcfs_across_workflow_instances(self):
        dag = WorkflowDAG.linear_pipeline(["a", "b"])
        wi1 = make_wi(dag, {"a": (1, 1.0), "b": (1, 1.0)}, key="wf#0")
        wi2 = make_wi(dag, {"a": (1, 1.0), "b": (1, 1.0)}, key="wf#1")
        sched = ReadySetScheduler()
        first = sched.admit(wi1, self._states(wi1))
        second = sched.admit(wi2, self._states(wi2))
        assert first == ["st-0"] and second == ["st-0"]
        # wi1's root was released first, so it dispatches first.
        assert sched.pop() == first[0]
        # wi2's successor releases before wi1's: release order rules.
        released = sched.on_success(wi2, wi2.tasks[0])
        assert len(sched) == 1 + len(released)

    def test_requeue_restores_original_priority(self):
        dag = WorkflowDAG(["a"])
        wi = make_wi(dag, {"a": (3, 1.0)})
        sched = ReadySetScheduler()
        states = {t.instance_id: t.instance_id for t in wi.tasks}
        sched.admit(wi, states)
        head = sched.pop()
        assert head == 0
        sched.requeue(wi, wi.tasks[0])
        # Re-queued task 0 outranks tasks released after it (1, 2).
        assert sched.head() == 0

    def test_queued_is_fcfs_and_nondestructive(self):
        dag = WorkflowDAG(["a"])
        wi = make_wi(dag, {"a": (3, 1.0)})
        sched = ReadySetScheduler()
        sched.admit(wi, {t.instance_id: t.instance_id for t in wi.tasks})
        assert sched.queued() == [0, 1, 2]
        assert len(sched) == 3


class TestWorkflowArrivals:
    def test_defaults(self):
        wa = WorkflowArrivals()
        assert wa.n_instances == 1
        assert wa.tenant(0) == "user0"
        assert wa.sample(np.random.default_rng(0)).tolist() == [0.0]

    def test_parse_count_only(self):
        wa = parse_workflow_arrival("4")
        assert wa.n_instances == 4
        assert wa.sample(np.random.default_rng(0)).tolist() == [0.0] * 4
        # One tenant per instance by default.
        assert [wa.tenant(i) for i in range(4)] == [
            "user0", "user1", "user2", "user3"
        ]

    def test_parse_int_passthrough(self):
        assert parse_workflow_arrival(3).n_instances == 3
        wa = WorkflowArrivals(2)
        assert parse_workflow_arrival(wa) is wa

    def test_parse_fixed(self):
        wa = parse_workflow_arrival("3@fixed:1.5")
        assert wa.sample(np.random.default_rng(0)).tolist() == [0.0, 1.5, 3.0]

    def test_parse_poisson_seeded_determinism(self):
        wa = parse_workflow_arrival("5@poisson:2")
        a = wa.sample(np.random.default_rng(7))
        b = wa.sample(np.random.default_rng(7))
        c = wa.sample(np.random.default_rng(8))
        assert a.tolist() == b.tolist()
        assert a.tolist() != c.tolist()

    def test_parse_bursty(self):
        wa = parse_workflow_arrival("4@bursty:2x0.5")
        assert wa.sample(np.random.default_rng(0)).tolist() == [
            0.0, 0.0, 0.5, 0.5
        ]

    def test_parse_tenants(self):
        wa = parse_workflow_arrival("4@poisson:2@tenants:2")
        assert [wa.tenant(i) for i in range(4)] == [
            "user0", "user1", "user0", "user1"
        ]

    def test_tenants_capped_at_instances(self):
        assert WorkflowArrivals(2, n_tenants=5).n_tenants == 2

    @pytest.mark.parametrize(
        "spec",
        ["", "x", "0", "-1", "2@nope:1", "2@poisson:2@users:3",
         "2@poisson:2@tenants:x", "1@2@3@4"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_workflow_arrival(spec)

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse_workflow_arrival(1.5)
