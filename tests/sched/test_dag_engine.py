"""Tests for the DAG-aware scheduling engine and its plumbing."""

import pytest

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.sched.engine import resolve_dag
from repro.sim import (
    EventDrivenBackend,
    OnlineSimulator,
    UnschedulableTaskError,
    run_cell,
    run_grid,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.workflow.dag import WorkflowDAG
from repro.workflow.nfcore import build_workflow_trace
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def make_trace(spec, workflow="wf", dag=None, preset=4096.0):
    """``spec``: list of (type_name, peak_mb, runtime_hours) tuples."""
    types = {}
    insts = []
    for i, (name, peak, runtime) in enumerate(spec):
        tt = types.setdefault(
            name,
            TaskType(name=name, workflow=workflow, preset_memory_mb=preset),
        )
        insts.append(
            TaskInstance(
                task_type=tt,
                instance_id=i,
                input_size_mb=100.0,
                peak_memory_mb=peak,
                runtime_hours=runtime,
            )
        )
    return WorkflowTrace(workflow, insts, dag=dag)


class FixedPredictor(MemoryPredictor):
    name = "Fixed"

    def __init__(self, allocation_mb: float):
        self.allocation_mb = allocation_mb

    def predict(self, task: TaskSubmission) -> float:
        return self.allocation_mb


class TestResolveDag:
    def test_trace_dag_used_by_default(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        trace = make_trace([("a", 100.0, 1.0)], dag=dag)
        assert resolve_dag(None, trace) is dag
        assert resolve_dag("trace", trace) is dag

    def test_missing_trace_dag_is_an_error(self):
        trace = make_trace([("a", 100.0, 1.0)])
        with pytest.raises(ValueError, match="carries no DAG"):
            resolve_dag("trace", trace)

    def test_linear_chains_types_in_appearance_order(self):
        trace = make_trace(
            [("b", 100.0, 1.0), ("a", 100.0, 1.0), ("b", 100.0, 1.0)]
        )
        dag = resolve_dag("linear", trace)
        assert dag.edges == [("b", "a")]

    def test_explicit_dag_must_cover_trace_types(self):
        trace = make_trace([("a", 100.0, 1.0), ("b", 100.0, 1.0)])
        with pytest.raises(ValueError, match="missing task types"):
            resolve_dag(WorkflowDAG(["a"]), trace)

    def test_garbage_rejected(self):
        trace = make_trace([("a", 100.0, 1.0)])
        with pytest.raises(ValueError, match="dag must be"):
            resolve_dag(42, trace)


class TestFlatStreamEquivalence:
    """A linear-chain DAG, one workflow instance, no contention: the DAG
    engine must reproduce the flat event stream's per-task results."""

    SPEC = [
        ("a", 1000.0, 1.0),
        ("a", 3000.0, 0.5),
        ("b", 500.0, 2.0),
        ("c", 2500.0, 0.25),
    ]

    def run_pair(self, time_to_failure=1.0):
        dag = WorkflowDAG.linear_pipeline(["a", "b", "c"])
        trace = make_trace(self.SPEC, dag=dag)
        flat = OnlineSimulator(
            trace, backend="event", time_to_failure=time_to_failure
        ).run(FixedPredictor(2048.0))
        dag_res = OnlineSimulator(
            trace,
            backend="event",
            dag="trace",
            time_to_failure=time_to_failure,
        ).run(FixedPredictor(2048.0))
        return flat, dag_res

    @pytest.mark.parametrize("ttf", [1.0, 0.5])
    def test_per_task_results_identical(self, ttf):
        flat, dag_res = self.run_pair(ttf)
        assert dag_res.total_wastage_gbh == pytest.approx(
            flat.total_wastage_gbh
        )
        assert dag_res.num_failures == flat.num_failures
        assert dag_res.total_runtime_hours == pytest.approx(
            flat.total_runtime_hours
        )
        for p_flat, p_dag in zip(flat.predictions, dag_res.predictions):
            assert p_dag.instance_id == p_flat.instance_id
            assert p_dag.first_allocation_mb == p_flat.first_allocation_mb
            assert p_dag.final_allocation_mb == p_flat.final_allocation_mb
            assert p_dag.n_attempts == p_flat.n_attempts

    def test_dag_serializes_stages(self):
        flat, dag_res = self.run_pair()
        # Flat: everything concurrent -> makespan = slowest task (2 h).
        assert flat.cluster.makespan_hours == pytest.approx(2.0)
        # DAG stage barriers: a takes 1.0 h (the killed 3000-peak task
        # restarts at 0.5 and finishes at 1.0), b adds 2.0 h, c adds
        # 0.5 h (one full-length failed attempt at ttf=1 plus the retry).
        assert dag_res.cluster.makespan_hours == pytest.approx(3.5)
        (w,) = dag_res.workflows.instances
        assert w.makespan_hours == pytest.approx(3.5)
        # The lower bound ignores sizing failures: 1.0 + 2.0 + 0.25.
        assert w.critical_path_hours == pytest.approx(3.25)
        assert w.stretch == pytest.approx(3.5 / 3.25)


class TestDependencyGating:
    def test_killed_and_requeued_task_delays_successors(self):
        # Parent is under-allocated once: killed at 0.5 h, retried for
        # 1 h.  The child must wait for the retry, not the first launch.
        dag = WorkflowDAG.linear_pipeline(["parent", "child"])
        trace = make_trace(
            [("parent", 3000.0, 1.0), ("child", 1000.0, 1.0)], dag=dag
        )
        res = OnlineSimulator(
            trace, backend="event", dag="trace", time_to_failure=0.5
        ).run(FixedPredictor(2000.0))
        assert res.num_failures == 1
        # 0.5 h failed attempt + 1 h retry + 1 h child.
        assert res.cluster.makespan_hours == pytest.approx(2.5)
        (w,) = res.workflows.instances
        assert w.n_failures == 1
        # Without dependencies the flat stream overlaps parent and child.
        flat = OnlineSimulator(
            trace, backend="event", time_to_failure=0.5
        ).run(FixedPredictor(2000.0))
        assert flat.cluster.makespan_hours == pytest.approx(1.5)

    def test_fan_out_fan_in_sink_waits_for_slowest_branch(self):
        dag = WorkflowDAG.fan_out_fan_in("src", ["p1", "p2"], "sink")
        trace = make_trace(
            [
                ("src", 100.0, 0.5),
                ("p1", 100.0, 1.0),
                ("p2", 100.0, 3.0),
                ("sink", 100.0, 0.5),
            ],
            dag=dag,
        )
        res = OnlineSimulator(trace, backend="event", dag="trace").run(
            FixedPredictor(1024.0)
        )
        # 0.5 (src) + 3.0 (slowest branch) + 0.5 (sink).
        assert res.cluster.makespan_hours == pytest.approx(4.0)
        (w,) = res.workflows.instances
        assert w.critical_path_hours == pytest.approx(4.0)
        assert w.stretch == pytest.approx(1.0)


class TestMultiWorkflow:
    def test_batch_of_instances_contend(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        trace = make_trace([("a", 1000.0, 1.0)], dag=dag)
        tiny = ResourceManager(
            config=MachineConfig(name="tiny", memory_mb=2048.0), n_nodes=1
        )
        res = OnlineSimulator(
            trace, manager=tiny, backend="event", workflow_arrival="3"
        ).run(FixedPredictor(1500.0))
        assert res.num_tasks == 3
        # One node, three one-hour tasks: strictly serialized.
        assert res.cluster.makespan_hours == pytest.approx(3.0)
        wm = res.workflows
        assert wm.n_instances == 3
        assert [w.key for w in wm.instances] == ["wf#0", "wf#1", "wf#2"]
        assert [w.tenant for w in wm.instances] == [
            "user0", "user1", "user2"
        ]
        assert sorted(w.makespan_hours for w in wm.instances) == pytest.approx(
            [1.0, 2.0, 3.0]
        )
        assert wm.max_stretch == pytest.approx(3.0)
        assert wm.mean_makespan_hours == pytest.approx(2.0)

    def test_wastage_attribution_sums_to_ledger(self):
        trace = build_workflow_trace("iwd", seed=3, scale=0.05)
        res = OnlineSimulator(
            trace,
            backend=EventDrivenBackend(
                workflow_arrival="3@poisson:2", seed=5
            ),
            cluster="64g:2,128g:2",
            placement="best-fit",
        ).run(FixedPredictor(4096.0))
        wm = res.workflows
        assert sum(w.wastage_gbh for w in wm.instances) == pytest.approx(
            res.total_wastage_gbh
        )
        assert sum(w.n_failures for w in wm.instances) == res.num_failures
        assert sum(w.queue_wait_hours for w in wm.instances) == pytest.approx(
            res.cluster.total_queue_wait_hours
        )
        assert res.num_tasks == 3 * len(trace)

    def test_instance_ids_stay_joinable_to_the_trace(self):
        # Subsampled traces have sparse ids; copy 0 must preserve them
        # exactly and copy k must offset them by a fixed stride, so
        # results join back to trace.instances like the flat backends.
        trace = build_workflow_trace("iwd", seed=3, scale=0.05)
        original_ids = sorted(t.instance_id for t in trace)
        assert original_ids != list(range(len(trace)))  # genuinely sparse
        res = OnlineSimulator(
            trace, backend="event", workflow_arrival="2"
        ).run(FixedPredictor(8192.0))
        stride = max(original_ids) + 1
        got = sorted(p.instance_id for p in res.predictions)
        assert got == sorted(
            original_ids + [i + stride for i in original_ids]
        )

    def test_poisson_workflow_arrivals_deterministic_per_seed(self):
        trace = build_workflow_trace("iwd", seed=3, scale=0.05)

        def submits(seed):
            res = OnlineSimulator(
                trace,
                backend=EventDrivenBackend(
                    workflow_arrival="3@poisson:1", seed=seed
                ),
            ).run(FixedPredictor(4096.0))
            return [w.submit_time_hours for w in res.workflows.instances]

        assert submits(7) == submits(7)
        assert submits(7) != submits(8)

    def test_tenants_round_robin(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        trace = make_trace([("a", 100.0, 1.0)], dag=dag)
        res = OnlineSimulator(
            trace, backend="event", workflow_arrival="4@fixed:0@tenants:2"
        ).run(FixedPredictor(1024.0))
        by_tenant = res.workflows.by_tenant()
        assert sorted(by_tenant) == ["user0", "user1"]
        assert all(len(v) == 2 for v in by_tenant.values())


class TestPlumbing:
    def test_replay_backend_rejects_dag_options(self):
        trace = make_trace([("a", 100.0, 1.0)])
        with pytest.raises(ValueError, match="kernel-driven"):
            OnlineSimulator(trace, backend="replay", dag="linear")

    def test_flat_event_backend_has_no_workflow_metrics(self):
        trace = make_trace([("a", 100.0, 1.0)])
        res = OnlineSimulator(trace, backend="event").run(
            FixedPredictor(1024.0)
        )
        assert res.workflows is None

    def test_dag_rejects_task_level_arrival_model(self):
        # A per-task arrival model would be silently ignored under DAG
        # scheduling; the constructor rejects the ambiguous combination.
        with pytest.raises(ValueError, match="replace the per-task"):
            EventDrivenBackend(arrival="poisson:1", dag="trace")
        with pytest.raises(ValueError, match="replace the per-task"):
            EventDrivenBackend(
                arrival_interval_hours=0.5, workflow_arrival="2"
            )
        # The batch default (everything at t=0) stays compatible.
        assert EventDrivenBackend(dag="trace").dag == "trace"

    def test_with_workflow_options_preserves_settings(self):
        backend = EventDrivenBackend(
            prediction_chunk=7, seed=13, doubling_factor=3.0
        )
        configured = backend.with_workflow_options(
            dag="linear", workflow_arrival="2"
        )
        assert configured.prediction_chunk == 7
        assert configured.seed == 13
        assert configured.doubling_factor == 3.0
        assert configured.dag == "linear"
        assert configured.workflow_arrival.n_instances == 2
        # The original stays flat.
        assert backend.dag is None and backend.workflow_arrival is None

    def test_unschedulable_task_still_raises(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        trace = make_trace([("a", 200_000.0, 1.0)], dag=dag)
        with pytest.raises(UnschedulableTaskError):
            OnlineSimulator(trace, backend="event", dag="trace").run(
                FixedPredictor(1024.0)
            )

    def test_run_cell_threads_dag_options(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        trace = make_trace([("a", 1000.0, 1.0)], dag=dag)
        res = run_cell(
            trace,
            lambda: FixedPredictor(2048.0),
            backend="event",
            dag="trace",
            workflow_arrival="2",
        )
        assert res.workflows is not None
        assert res.workflows.n_instances == 2

    def test_run_grid_threads_dag_options(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        traces = {"wf": make_trace([("a", 1000.0, 1.0)], dag=dag)}
        results = run_grid(
            traces,
            {"Fixed": lambda: FixedPredictor(2048.0)},
            backend="event",
            dag="trace",
            workflow_arrival="2@fixed:0.5",
        )
        res = results["Fixed"]["wf"]
        assert res.workflows.n_instances == 2
        assert res.workflows.instances[1].submit_time_hours == pytest.approx(
            0.5
        )

    def test_empty_trace(self):
        dag = WorkflowDAG.linear_pipeline(["a"])
        trace = WorkflowTrace("wf", [], dag=dag)
        res = OnlineSimulator(
            trace, backend="event", dag="trace", workflow_arrival="2"
        ).run(FixedPredictor(1024.0))
        assert res.num_tasks == 0
        wm = res.workflows
        assert wm.n_instances == 2
        assert all(w.makespan_hours == 0.0 for w in wm.instances)
        assert all(w.stretch == 1.0 for w in wm.instances)

    def test_generated_trace_runs_with_learning_predictor(self):
        # End-to-end: a real generated DAG + Sizey under contention.
        from repro.experiments.factories import make_sizey

        trace = build_workflow_trace("iwd", seed=0, scale=0.05)
        res = OnlineSimulator(
            trace,
            backend=EventDrivenBackend(
                dag="trace", workflow_arrival="2@poisson:4", seed=1
            ),
            cluster="64g:2",
        ).run(make_sizey())
        assert res.num_tasks == 2 * len(trace)
        assert res.workflows.n_instances == 2
        for w in res.workflows.instances:
            assert w.finish_time_hours >= w.submit_time_hours
            assert w.critical_path_hours > 0
