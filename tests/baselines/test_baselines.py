"""Tests for the four state-of-the-art baselines and the presets."""

import numpy as np
import pytest

from repro.baselines import (
    TovarPPM,
    WittLR,
    WittPercentile,
    WittWastage,
    WorkflowPresets,
)
from repro.provenance.records import TaskRecord
from repro.sim.interface import TaskSubmission


def sub(task="t", iid=0, x=100.0, preset=4096.0):
    return TaskSubmission(
        task_type=task,
        workflow="wf",
        machine="m1",
        instance_id=iid,
        input_size_mb=x,
        preset_memory_mb=preset,
        timestamp=iid,
    )


def rec(task="t", x=100.0, y=500.0, rt=0.5, success=True, ts=0, iid=0):
    return TaskRecord(
        task_type=task,
        workflow="wf",
        machine="m1",
        timestamp=ts,
        input_size_mb=x,
        peak_memory_mb=y,
        runtime_hours=rt,
        success=success,
        instance_id=iid,
    )


def feed(predictor, xs, ys, rts=None, task="t"):
    rts = rts or [0.5] * len(xs)
    for i, (x, y, rt) in enumerate(zip(xs, ys, rts)):
        predictor.observe(rec(task=task, x=x, y=y, rt=rt, ts=i, iid=i))


class TestWorkflowPresets:
    def test_always_preset(self):
        p = WorkflowPresets()
        assert p.predict(sub(preset=8192.0)) == 8192.0
        feed(p, [1.0], [100.0])
        assert p.predict(sub(preset=8192.0)) == 8192.0  # never learns

    def test_failure_fallback_doubles(self):
        assert WorkflowPresets().on_failure(sub(), 1000.0, 1) == 2000.0


class TestWittPercentile:
    def test_preset_before_min_history(self):
        p = WittPercentile()
        assert p.predict(sub()) == 4096.0
        feed(p, [1.0], [100.0])
        assert p.predict(sub()) == 4096.0  # one record < min_history=2

    def test_p95_of_history(self):
        p = WittPercentile()
        ys = list(np.linspace(100, 200, 101))
        feed(p, [1.0] * 101, ys)
        assert p.predict(sub()) == pytest.approx(np.percentile(ys, 95))

    def test_ignores_failures(self):
        p = WittPercentile()
        feed(p, [1.0, 1.0], [100.0, 110.0])
        p.observe(rec(y=9999.0, success=False))
        assert p.predict(sub()) < 1000.0

    def test_custom_percentile(self):
        p = WittPercentile(percentile=50.0)
        feed(p, [1.0] * 3, [100.0, 200.0, 300.0])
        assert p.predict(sub()) == pytest.approx(200.0)

    def test_doubles_on_failure(self):
        assert WittPercentile().on_failure(sub(), 1000.0, 1) == 2000.0

    def test_validation(self):
        with pytest.raises(ValueError, match="percentile"):
            WittPercentile(percentile=0.0)
        with pytest.raises(ValueError, match="min_history"):
            WittPercentile(min_history=0)


class TestWittLR:
    def test_learns_linear_relationship(self):
        p = WittLR()
        xs = list(np.linspace(10, 1000, 50))
        ys = [3.0 * x + 100.0 for x in xs]
        feed(p, xs, ys)
        got = p.predict(sub(x=500.0))
        # exact line + ~zero offset
        assert got == pytest.approx(1600.0, rel=0.02)

    def test_offset_is_mean_abs_residual(self):
        p = WittLR()
        # Constant inputs, alternating targets: line fits the mean, and
        # every |residual| is 50.
        feed(p, [100.0] * 10, [450.0, 550.0] * 5)
        got = p.predict(sub(x=100.0))
        assert got == pytest.approx(500.0 + 50.0, rel=0.01)

    def test_preset_before_history(self):
        assert WittLR().predict(sub()) == 4096.0

    def test_doubles_on_failure(self):
        assert WittLR().on_failure(sub(), 500.0, 2) == 1000.0


class TestTovarPPM:
    def test_preset_before_history(self):
        assert TovarPPM().predict(sub()) == 4096.0

    def test_candidate_minimises_empirical_waste(self):
        # Peaks mostly small with one huge outlier: allocating the max
        # for every task wastes more than occasionally failing one task,
        # so the chosen candidate must be below the outlier.
        p = TovarPPM(node_memory_mb=10_000.0)
        ys = [100.0] * 50 + [5000.0]
        feed(p, [1.0] * 51, ys, rts=[1.0] * 51)
        assert p.predict(sub()) == pytest.approx(100.0)

    def test_allocates_max_when_failures_costly(self):
        # Two modes close together: covering both is cheap, failures are
        # not; the candidate must be the larger mode.
        p = TovarPPM(node_memory_mb=100_000.0)
        feed(p, [1.0] * 40, [900.0, 1000.0] * 20)
        assert p.predict(sub()) == pytest.approx(1000.0)

    def test_node_max_on_failure(self):
        p = TovarPPM(node_memory_mb=65536.0)
        assert p.on_failure(sub(), 100.0, 1) == 65536.0

    def test_candidate_thinning(self):
        p = TovarPPM(max_candidates=10)
        ys = list(np.linspace(100, 1000, 500))
        feed(p, [1.0] * 500, ys)
        assert np.isfinite(p.predict(sub()))

    def test_validation(self):
        with pytest.raises(ValueError, match="node_memory_mb"):
            TovarPPM(node_memory_mb=0.0)


class TestWittWastage:
    def test_preset_before_history(self):
        assert WittWastage().predict(sub()) == 4096.0

    def test_fits_linear_band(self):
        p = WittWastage(refit_interval=1)
        rng = np.random.default_rng(0)
        xs = list(rng.uniform(10, 1000, 60))
        ys = [2.0 * x + 50.0 + rng.normal(0, 5.0) for x in xs]
        feed(p, xs, ys)
        got = p.predict(sub(x=500.0))
        assert got == pytest.approx(1050.0, rel=0.1)

    def test_selected_line_is_a_quantile_line(self):
        p = WittWastage(quantiles=(0.5, 0.9), refit_interval=1)
        feed(p, [100.0] * 20, list(np.linspace(400, 600, 20)))
        line = p._best_line["t"]
        assert line.quantile in (0.5, 0.9)

    def test_refit_cadence(self):
        p = WittWastage(refit_interval=10)
        xs = [float(i) for i in range(1, 6)]
        feed(p, xs, [10.0 * x for x in xs])
        first = p._best_line["t"]
        # 5 more records: no refit before the 10-observation cadence.
        for i in range(4):
            p.observe(rec(x=10.0 + i, y=100.0 + i, ts=10 + i, iid=10 + i))
        assert p._best_line["t"] is first

    def test_internal_objective_ignores_lost_work(self):
        # The method's own wastage model charges only over-allocation
        # (including the doubled retry), not the killed attempt — that is
        # what makes it choose aggressive lines.
        p = WittWastage()
        alloc = np.array([100.0])
        y = np.array([150.0])
        rt = np.array([2.0])
        waste = p._hypothetical_wastage(alloc, y, rt)
        assert waste == pytest.approx((200.0 - 150.0) * 2.0)

    def test_doubles_on_failure(self):
        assert WittWastage().on_failure(sub(), 512.0, 1) == 1024.0

    def test_validation(self):
        with pytest.raises(ValueError, match="quantiles"):
            WittWastage(quantiles=(1.5,))
        with pytest.raises(ValueError, match="refit_interval"):
            WittWastage(refit_interval=0)
