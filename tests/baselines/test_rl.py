"""Tests for the RL memory sizers (related-work extension)."""

import numpy as np
import pytest

from repro.baselines.rl import GradientBanditSizer, QLearningSizer
from repro.provenance.records import TaskRecord
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import TaskSubmission
from repro.workflow.nfcore import build_workflow_trace


def sub(iid=0, preset=1000.0, task="t"):
    return TaskSubmission(
        task_type=task,
        workflow="wf",
        machine="m1",
        instance_id=iid,
        input_size_mb=50.0,
        preset_memory_mb=preset,
        timestamp=iid,
    )


def rec(iid=0, y=450.0, success=True, task="t"):
    return TaskRecord(
        task_type=task,
        workflow="wf",
        machine="m1",
        timestamp=iid,
        input_size_mb=50.0,
        peak_memory_mb=y,
        runtime_hours=0.1,
        success=success,
        instance_id=iid,
    )


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", [GradientBanditSizer, QLearningSizer])
    def test_arms_span_preset(self, cls):
        agent = cls()
        agent.predict(sub(preset=1000.0))
        arms = agent._state["t"].arms_mb
        assert arms.min() == pytest.approx(100.0)
        assert arms.max() == pytest.approx(1000.0)
        assert len(arms) == 10

    @pytest.mark.parametrize("cls", [GradientBanditSizer, QLearningSizer])
    def test_prediction_is_an_arm(self, cls):
        agent = cls()
        got = agent.predict(sub())
        assert got in agent._state["t"].arms_mb

    @pytest.mark.parametrize("cls", [GradientBanditSizer, QLearningSizer])
    def test_on_failure_steps_up_grid(self, cls):
        agent = cls()
        agent.predict(sub(preset=1000.0))
        nxt = agent.on_failure(sub(), failed_allocation_mb=450.0, attempt=1)
        assert nxt == pytest.approx(500.0)  # the next arm above 450

    @pytest.mark.parametrize("cls", [GradientBanditSizer, QLearningSizer])
    def test_on_failure_doubles_beyond_grid(self, cls):
        agent = cls()
        agent.predict(sub(preset=1000.0))
        nxt = agent.on_failure(sub(), failed_allocation_mb=1000.0, attempt=2)
        assert nxt == pytest.approx(2000.0)

    @pytest.mark.parametrize("cls", [GradientBanditSizer, QLearningSizer])
    def test_reward_semantics(self, cls):
        agent = cls()
        # Failure -> the penalty; success -> negative over-allocation.
        assert agent._reward(500.0, rec(success=False)) == agent.failure_penalty
        r_tight = agent._reward(460.0, rec(y=450.0))
        r_loose = agent._reward(900.0, rec(y=450.0))
        assert r_loose < r_tight <= 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_arms"):
            GradientBanditSizer(n_arms=1)
        with pytest.raises(ValueError, match="learning_rate"):
            GradientBanditSizer(learning_rate=0.0)
        with pytest.raises(ValueError, match="epsilon"):
            QLearningSizer(epsilon=2.0)


class TestLearning:
    def test_bandit_concentrates_on_good_arm(self):
        agent = GradientBanditSizer(random_state=0, learning_rate=0.5)
        # Constant peak 450: arm 500 (index 4) is the tightest safe arm.
        for i in range(300):
            alloc = agent.predict(sub(iid=i))
            agent.observe(rec(iid=i, y=450.0, success=alloc >= 450.0))
        pi = agent._policy(agent._state["t"])
        assert np.argmax(pi) == 4

    def test_qlearning_prefers_tight_safe_arm(self):
        agent = QLearningSizer(random_state=0, epsilon=0.3)
        for i in range(400):
            alloc = agent.predict(sub(iid=i))
            agent.observe(rec(iid=i, y=450.0, success=alloc >= 450.0))
        st = agent._state["t"]
        assert int(np.argmax(st.values)) == 4

    def test_end_to_end_wastes_more_than_presets_learn_less(self):
        # The paper's qualitative point: RL sizers ignore the input-size
        # dependency, so on input-correlated workloads they waste more
        # than Sizey. Here we just require they run clean end-to-end.
        trace = build_workflow_trace("iwd", seed=4, scale=0.1)
        for cls in (GradientBanditSizer, QLearningSizer):
            res = OnlineSimulator(trace).run(cls())
            assert res.num_tasks == len(trace)
            assert res.total_wastage_gbh > 0
