"""End-to-end integration tests: the full stack on real (synthetic) traces."""

import numpy as np
import pytest

from repro import SizeyConfig, SizeyPredictor
from repro.baselines import WorkflowPresets
from repro.experiments.factories import method_factories
from repro.sim import OnlineSimulator, run_grid
from repro.workflow.nfcore import WORKFLOW_NAMES, build_workflow_trace


class TestEndToEnd:
    @pytest.mark.parametrize("workflow", WORKFLOW_NAMES)
    def test_sizey_runs_clean_on_every_workflow(self, workflow):
        trace = build_workflow_trace(workflow, seed=1, scale=0.05)
        sizey = SizeyPredictor(SizeyConfig(training_mode="incremental"))
        res = OnlineSimulator(trace).run(sizey)
        assert res.num_tasks == len(trace)
        assert np.isfinite(res.total_wastage_gbh)
        # Online learning happened for every completed task.
        assert len(sizey.training_times_s) == res.num_tasks + res.num_failures * 0

    def test_sizey_beats_presets_on_scaled_rnaseq(self):
        trace = build_workflow_trace("rnaseq", seed=2, scale=0.25)
        sizey = OnlineSimulator(trace).run(
            SizeyPredictor(SizeyConfig(training_mode="incremental"))
        )
        presets = OnlineSimulator(trace).run(WorkflowPresets())
        assert sizey.total_wastage_gbh < presets.total_wastage_gbh
        assert presets.num_failures == 0

    def test_full_and_incremental_agree_on_magnitude(self):
        trace = build_workflow_trace("iwd", seed=3, scale=0.1)
        full = OnlineSimulator(trace).run(
            SizeyPredictor(SizeyConfig(training_mode="full"))
        )
        inc = OnlineSimulator(trace).run(
            SizeyPredictor(SizeyConfig(training_mode="incremental"))
        )
        ratio = inc.total_wastage_gbh / full.total_wastage_gbh
        assert 0.25 < ratio < 4.0

    def test_grid_runner_serial_matches_parallel(self):
        traces = {"iwd": build_workflow_trace("iwd", seed=4, scale=0.05)}
        factories = {
            m: f
            for m, f in method_factories().items()
            if m in ("Witt-Percentile", "Workflow-Presets")
        }
        serial = run_grid(traces, factories, n_workers=1)
        parallel = run_grid(traces, factories, n_workers=2)
        for m in factories:
            assert serial[m]["iwd"].total_wastage_gbh == pytest.approx(
                parallel[m]["iwd"].total_wastage_gbh
            )

    def test_deterministic_replay(self):
        trace = build_workflow_trace("chipseq", seed=5, scale=0.05)

        def run_once():
            return OnlineSimulator(trace).run(
                SizeyPredictor(SizeyConfig(training_mode="incremental"))
            )

        a, b = run_once(), run_once()
        assert a.total_wastage_gbh == pytest.approx(b.total_wastage_gbh)
        assert a.num_failures == b.num_failures

    def test_gbrt_model_class_usable_in_pool(self):
        trace = build_workflow_trace("iwd", seed=6, scale=0.05)
        sizey = SizeyPredictor(
            SizeyConfig(
                training_mode="incremental",
                model_classes=("linear", "knn", "gbrt"),
            )
        )
        res = OnlineSimulator(trace).run(sizey)
        assert res.num_tasks == len(trace)
