"""Compare every memory-sizing method on multiple workflows.

A miniature of the paper's Fig. 8 / Table II: all six methods (plus the
two RL sizers from the related-work discussion) replay two workflows;
the script prints total wastage, failures, and runtime per cell.

Run:  python examples/method_comparison.py
"""

from repro.baselines.rl import GradientBanditSizer, QLearningSizer
from repro.experiments.factories import method_factories
from repro.experiments.report import render_table
from repro.sim.runner import run_grid
from repro.workflow.nfcore import build_workflow_trace

WORKFLOWS = ("chipseq", "iwd")
SCALE = 0.3


def main() -> None:
    traces = {
        wf: build_workflow_trace(wf, seed=5, scale=SCALE) for wf in WORKFLOWS
    }
    factories = dict(method_factories())
    factories["RL-GradientBandit"] = GradientBanditSizer
    factories["RL-QLearning"] = QLearningSizer

    print(f"running {len(factories)} methods x {len(traces)} workflows...\n")
    results = run_grid(traces, factories, time_to_failure=1.0)

    rows = []
    for method, per_wf in results.items():
        total_w = sum(r.total_wastage_gbh for r in per_wf.values())
        total_f = sum(r.num_failures for r in per_wf.values())
        total_rt = sum(r.total_runtime_hours for r in per_wf.values())
        rows.append([method, total_w, total_f, total_rt])
    rows.sort(key=lambda r: r[1])
    print(
        render_table(
            ["method", "wastage GBh", "failures", "runtime h"],
            rows,
            title=f"All methods on {', '.join(WORKFLOWS)} (scale={SCALE})",
        )
    )

    best = rows[0][0]
    print(f"\nlowest wastage: {best}")


if __name__ == "__main__":
    main()
