"""Extend Sizey with a custom model class.

The paper advertises Sizey as "an easily extendable interface": the
model pool is generic over model classes.  This example registers a
quantile-memorising predictor (always estimates the 90th percentile of
the peaks it has seen) as a fifth model class and lets the RAQ gating
decide, per task type, whether it earns any weight.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import SizeyConfig, SizeyPredictor
from repro.core.models import CUSTOM_SLOT_REGISTRY, ModelSlot, register_slot
from repro.sim import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace


class P90Slot(ModelSlot):
    """Input-agnostic 90th-percentile estimator.

    Strong on input-independent noisy tasks (the lcextrap shape), where
    regressing on input size has nothing to offer; weak everywhere else.
    The RAQ score sorts that out automatically.
    """

    class_name = "p90"

    def __init__(self, mode: str, random_state: int = 0) -> None:
        super().__init__(mode, random_state)
        self._peaks: list[float] = []

    def train_full(self, X, y, do_hpo):
        self._peaks = list(y)
        self.fitted = True

    def update_incremental(self, x_new, y_new, X_window, y_window, n_seen):
        self._peaks.append(float(y_new))
        self.fitted = True

    def predict(self, X):
        value = float(np.percentile(self._peaks, 90))
        return self._clamp(np.full(np.asarray(X).shape[0], value))


def main() -> None:
    if "p90" not in CUSTOM_SLOT_REGISTRY:
        register_slot("p90", P90Slot)

    trace = build_workflow_trace("eager", seed=13, scale=0.3)

    stock = SizeyPredictor(SizeyConfig(training_mode="incremental"))
    extended = SizeyPredictor(
        SizeyConfig(
            training_mode="incremental",
            model_classes=("linear", "knn", "mlp", "random_forest", "p90"),
        )
    )

    res_stock = OnlineSimulator(trace).run(stock)
    res_ext = OnlineSimulator(trace).run(extended)

    print(f"{'':28s} {'stock pool':>12s} {'with p90':>12s}")
    print(f"{'wastage (GBh)':28s} {res_stock.total_wastage_gbh:12.2f} "
          f"{res_ext.total_wastage_gbh:12.2f}")
    print(f"{'failures':28s} {res_stock.num_failures:12d} "
          f"{res_ext.num_failures:12d}")

    shares = extended.model_selection_shares()
    print("\nselection shares with the custom class available:")
    for name, share in sorted(shares.items(), key=lambda kv: -kv[1]):
        print(f"  {name:15s} {share * 100.0:5.1f}%")
    print("\n(the p90 class wins exactly on the input-independent noisy "
          "task types, e.g. lcextrap)")


if __name__ == "__main__":
    main()
