"""Sizing as a service: the online loop over HTTP, with tenant isolation.

Starts the resident sizing server in a background thread, then walks
the whole serving story end to end:

1. a cold tenant answers from its user preset;
2. peak-memory feedback via ``/observe`` trains that tenant's models,
   and its next ``/predict`` answers from the trained pool — while a
   second tenant, never fed, keeps its preset answer (isolation);
3. the load generator replays a synthetic workload against the server
   with two tenants and prints p50/p99 sizing latency and request rate.

Run:  python examples/serve_demo.py [--tasks 96]
"""

import argparse

from repro.serve import ServerThread, SizingClient, run_loadgen


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tasks", type=int, default=96,
        help="tasks the load generator replays (default 96)",
    )
    args = parser.parse_args()

    with ServerThread(base_seed=0) as srv:
        print(f"server: {srv.server.url}\n")
        with SizingClient(srv.host, srv.port) as client:
            task = {"task_type": "align_reads", "input_size_mb": 1024.0}

            cold = client.predict("lab-a", [task])["results"][0]
            print(f"lab-a cold:  {cold['estimate_mb']:8.0f} MB "
                  f"({cold['source']})")

            # Feed back measured peaks — peak ~ 4 MB per input MB.
            client.observe("lab-a", [
                {
                    "task_type": "align_reads",
                    "input_size_mb": float(x),
                    "peak_memory_mb": 4.0 * x + 512.0,
                    "runtime_hours": 0.2,
                    "allocated_mb": 4.0 * x + 2048.0,
                }
                for x in (200, 500, 900, 1400, 1900)
            ])

            warm = client.predict("lab-a", [task])["results"][0]
            other = client.predict("lab-b", [task])["results"][0]
            print(f"lab-a warm:  {warm['estimate_mb']:8.0f} MB "
                  f"({warm['source']})")
            print(f"lab-b still: {other['estimate_mb']:8.0f} MB "
                  f"({other['source']})  <- isolated, never trained\n")

            metrics = client.metrics()
            wastage = metrics["registry"]["tenants"]["lab-a"]["wastage"]
            print(f"lab-a ledger: {wastage['total_gbh']:.3f} GBh wastage "
                  f"over {wastage['runtime_hours']:.1f} h\n")

        report = run_loadgen(
            "synthetic:rnaseq",
            host=srv.host,
            port=srv.port,
            tenants=2,
            rate_rps=500.0,
            batch=8,
            max_tasks=args.tasks,
            seed=0,
        )
        print(f"loadgen: {report.n_tasks} tasks as "
              f"{report.n_predict_requests} predict + "
              f"{report.n_observe_requests} observe requests, "
              f"{report.n_errors} errors")
        print(f"   p50 {report.predict_p50_ms:6.2f} ms   "
              f"p99 {report.predict_p99_ms:6.2f} ms   "
              f"{report.requests_per_sec:6.1f} req/s")


if __name__ == "__main__":
    main()
