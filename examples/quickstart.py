"""Quickstart: size memory for a workflow with Sizey, online.

Builds a synthetic rnaseq-like trace, replays it through the online
simulator with Sizey predicting every task's memory, and prints the
headline metrics next to the developer-preset baseline.

Run:  python examples/quickstart.py [--scale 0.3]
"""

import argparse

from repro import SizeyConfig, SizeyPredictor
from repro.baselines import WorkflowPresets
from repro.sim import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=0.3,
        help="trace subsampling fraction (default 0.3)",
    )
    args = parser.parse_args()

    # A scaled-down rnaseq trace: ~30 task types, a few hundred instances.
    trace = build_workflow_trace("rnaseq", seed=7, scale=args.scale)
    print(f"trace: {trace.workflow}, {len(trace)} task instances, "
          f"{len(trace.task_types)} task types\n")

    # Sizey with the paper's configuration (alpha=0, interpolation gating,
    # dynamic offsets); incremental online learning.
    sizey = SizeyPredictor(SizeyConfig(training_mode="incremental"))
    result = OnlineSimulator(trace).run(sizey)

    baseline = OnlineSimulator(trace).run(WorkflowPresets())

    print(f"{'':24s} {'Sizey':>12s} {'Presets':>12s}")
    print(f"{'memory wastage (GBh)':24s} {result.total_wastage_gbh:12.2f} "
          f"{baseline.total_wastage_gbh:12.2f}")
    print(f"{'task failures':24s} {result.num_failures:12d} "
          f"{baseline.num_failures:12d}")
    print(f"{'total runtime (h)':24s} {result.total_runtime_hours:12.2f} "
          f"{baseline.total_runtime_hours:12.2f}")
    saved = 1.0 - result.total_wastage_gbh / baseline.total_wastage_gbh
    print(f"\nSizey reduced memory wastage by {saved * 100.0:.1f}% "
          f"vs the workflow presets.")

    print("\nmodel classes Sizey leaned on (argmax-RAQ share):")
    for name, share in sorted(
        sizey.model_selection_shares().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:15s} {share * 100.0:5.1f}%")


if __name__ == "__main__":
    main()
