"""Scale-out in one command: a sharded 50k-task run that fits in RAM.

A reduced configuration of the million-task flagship
(:mod:`repro.experiments.million_task`): a WfCommons-derived workflow
instance replayed as ~50 competing DAG instances from 10 tenants on a
64-node cluster, partitioned over 4 shard processes.  Every shard runs
with streaming collectors — quantile sketches and running sums instead
of per-task lists — so peak memory stays flat no matter how many tasks
flow through; the merged summary still carries totals, counts, and
tail quantiles.

CI smokes exactly this script with ``--rss-budget-mb`` as a regression
gate on collector memory.  Scale the same pipeline up with the
experiment module's own CLI:

Run:  python examples/million_task.py [--tasks 50000] [--rss-budget-mb 1024]
Full: python -m repro.experiments.million_task   # 1M tasks, 1000 nodes
"""

import argparse
import sys
from dataclasses import replace

from repro.experiments.million_task import FLAGSHIP, ScaleConfig, collect


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tasks", type=int, default=50_000,
        help="total task floor (default 50000)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="worker shards (default 4)",
    )
    parser.add_argument(
        "--rss-budget-mb", type=float, default=None,
        help="exit 1 if peak RSS exceeds this bound (CI regression gate)",
    )
    args = parser.parse_args()

    cfg: ScaleConfig = replace(
        FLAGSHIP,
        tasks_target=args.tasks,
        nodes=64,
        tenants=10,
        shards=args.shards,
        arrival_rate=20.0,
    )
    print(f"scale-out: ~{args.tasks} tasks as {cfg.workflow} DAG instances, "
          f"{cfg.tenants} tenants, {cfg.nodes}x{cfg.node_memory_gb}g nodes, "
          f"{cfg.shards} shards\n")

    row = collect(cfg)
    print(f"{'tasks simulated':24s} {row['n_tasks']:>12,d}")
    print(f"{'workflow instances':24s} {row['n_instances']:>12,d}")
    print(f"{'wall-clock':24s} {row['wall_clock_seconds']:>12.2f} s")
    print(f"{'throughput':24s} {row['tasks_per_second']:>12,.0f} tasks/s")
    print(f"{'peak RSS':24s} {row['peak_rss_mb']:>12.1f} MB")
    print(f"{'cluster makespan':24s} {row['makespan_hours']:>12.2f} h")
    print(f"{'mean queue wait':24s} {row['mean_queue_wait_hours']:>12.3f} h")
    print(f"{'p99 queue wait':24s} {row['p99_queue_wait_hours']:>12.3f} h")
    print(f"{'mean utilization':24s} {row['mean_utilization']:>12.1%}")

    if args.rss_budget_mb is not None and row["peak_rss_mb"] > args.rss_budget_mb:
        print(f"\nFAIL: peak RSS {row['peak_rss_mb']:.1f} MB exceeds "
              f"budget {args.rss_budget_mb:.0f} MB")
        return 1
    if args.rss_budget_mb is not None:
        print(f"\nOK: peak RSS within {args.rss_budget_mb:.0f} MB budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
