"""Workflow-level scheduling: memory sizing as a makespan lever.

Simulates several users submitting whole methylseq workflow instances
(Poisson arrivals) to one small heterogeneous cluster.  The DAG-aware
engine releases a task only when its dependencies succeeded, so sizing
decisions feed back into *workflow* metrics: over-allocation crowds the
nodes and queues downstream stages, under-allocation burns retries on
the critical path.  Prints per-workflow makespan/stretch for Sizey and
two baselines.

Run:  python examples/workflow_scheduling.py [--scale 0.05]
"""

import argparse

from repro.experiments.factories import method_factories
from repro.sim import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="trace subsampling fraction (default 0.05)",
    )
    args = parser.parse_args()

    trace = build_workflow_trace("methylseq", seed=0, scale=args.scale)
    print(f"trace: {trace.workflow}, {len(trace)} task instances, "
          f"{len(trace.dag.stages)} DAG stages")
    print("scenario: 4 workflow instances, Poisson arrivals at 2/h, "
          "cluster 128g:2,256g:1\n")

    header = f"{'':18s} {'wastage GBh':>12s} {'mean mkspan h':>14s} " \
             f"{'mean stretch':>13s} {'mean wait h':>12s}"
    print(header)
    for method in ("Sizey", "Witt-Percentile", "Workflow-Presets"):
        result = OnlineSimulator(
            trace,
            backend="event",
            cluster="128g:2,256g:1",
            placement="best-fit",
            dag="trace",
            workflow_arrival="4@poisson:2",
        ).run(method_factories()[method]())
        wm = result.workflows
        print(f"{method:18s} {result.total_wastage_gbh:12.1f} "
              f"{wm.mean_makespan_hours:14.2f} {wm.mean_stretch:13.2f} "
              f"{wm.total_queue_wait_hours / wm.n_instances:12.2f}")

    print("\nper-workflow view of the last method (Workflow-Presets):")
    for w in wm.instances:
        print(f"  {w.key} ({w.tenant}): submitted {w.submit_time_hours:.2f} h, "
              f"makespan {w.makespan_hours:.2f} h "
              f"(critical path {w.critical_path_hours:.2f} h, "
              f"stretch {w.stretch:.2f})")


if __name__ == "__main__":
    main()
