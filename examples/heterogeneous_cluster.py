"""Heterogeneous cluster: why per-(task, machine) granularity exists.

The paper's Fig. 4 argues for the finest model granularity because
"tasks exhibit heterogeneous computational patterns that vary even more
with different machine configurations".  This scenario builds a
two-machine-type workflow where the same task type consumes different
memory per machine (e.g. different page sizes / allocators), then
compares Sizey with per-(task, machine) pools against the per-task
ablation that lumps both machines together.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import SizeyConfig, SizeyPredictor
from repro.sim import OnlineSimulator
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace


def build_heterogeneous_trace(n_per_machine=150, seed=0) -> WorkflowTrace:
    """One task type, two machines with different memory laws."""
    rng = np.random.default_rng(seed)
    tt = TaskType(name="align", workflow="hetero", preset_memory_mb=16 * 1024)
    instances = []
    iid = 0
    for machine, slope, intercept in (
        ("amd-128g", 2.0, 2000.0),
        ("arm-64g", 3.1, 3400.0),  # same tool, different memory law
    ):
        for _ in range(n_per_machine):
            x = float(rng.uniform(100, 2000))
            peak = slope * x + intercept + float(rng.normal(0, 40.0))
            instances.append(
                TaskInstance(
                    task_type=tt,
                    instance_id=iid,
                    input_size_mb=x,
                    peak_memory_mb=max(peak, 16.0),
                    runtime_hours=0.1,
                    machine=machine,
                )
            )
            iid += 1
    order = rng.permutation(len(instances))
    instances = [instances[i] for i in order]
    # Re-number so instance ids match submission order.
    instances = [
        TaskInstance(
            task_type=i.task_type,
            instance_id=k,
            input_size_mb=i.input_size_mb,
            peak_memory_mb=i.peak_memory_mb,
            runtime_hours=i.runtime_hours,
            machine=i.machine,
        )
        for k, i in enumerate(instances)
    ]
    return WorkflowTrace("hetero", instances)


def main() -> None:
    trace = build_heterogeneous_trace()
    print(f"{len(trace)} instances of one task type on two machine types\n")

    fine = OnlineSimulator(trace).run(
        SizeyPredictor(
            SizeyConfig(training_mode="incremental", granularity="task_machine")
        )
    )
    coarse = OnlineSimulator(trace).run(
        SizeyPredictor(
            SizeyConfig(training_mode="incremental", granularity="task")
        )
    )

    print(f"{'granularity':16s} {'wastage GBh':>12s} {'failures':>9s}")
    print(f"{'task+machine':16s} {fine.total_wastage_gbh:12.2f} "
          f"{fine.num_failures:9d}")
    print(f"{'task only':16s} {coarse.total_wastage_gbh:12.2f} "
          f"{coarse.num_failures:9d}")

    if fine.total_wastage_gbh < coarse.total_wastage_gbh:
        gain = 1.0 - fine.total_wastage_gbh / coarse.total_wastage_gbh
        print(f"\nper-(task, machine) pools reduce wastage by {gain*100:.1f}% "
              f"on this heterogeneous cluster (the paper's Fig. 4 rationale)")
    else:
        print("\n(no benefit on this draw — machine laws too similar)")


if __name__ == "__main__":
    main()
