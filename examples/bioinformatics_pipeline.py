"""Domain scenario: right-sizing a bioinformatics pipeline.

Mirrors the paper's motivating use case — a genomics workflow whose
task types range from trivially predictable (MarkDuplicates, linear in
input size) to adversarial (BaseRecalibrator, two memory regimes).  The
script replays the rnaseq workflow, then drills into exactly those two
task types to show *why* a multi-model predictor helps: the per-type
wastage and failure counts of Sizey against a single-model linear
baseline (Witt-LR).

Run:  python examples/bioinformatics_pipeline.py
"""

from repro import SizeyConfig, SizeyPredictor
from repro.baselines import WittLR
from repro.sim import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

SPOTLIGHT = ("MarkDuplicates", "BaseRecalibrator", "FastQC")


def main() -> None:
    trace = build_workflow_trace("rnaseq", seed=11, scale=0.6)
    print(f"replaying {len(trace)} rnaseq task instances...\n")

    sizey_res = OnlineSimulator(trace).run(
        SizeyPredictor(SizeyConfig(training_mode="incremental"))
    )
    linear_res = OnlineSimulator(trace).run(WittLR())

    print(f"{'task type':20s} {'Sizey GBh':>10s} {'fails':>6s} "
          f"{'Witt-LR GBh':>12s} {'fails':>6s}")
    s_w, s_f = sizey_res.wastage_by_task_type(), sizey_res.failures_by_task_type()
    l_w, l_f = linear_res.wastage_by_task_type(), linear_res.failures_by_task_type()
    for t in SPOTLIGHT:
        print(f"{t:20s} {s_w.get(t, 0.0):10.2f} {s_f.get(t, 0):6d} "
              f"{l_w.get(t, 0.0):12.2f} {l_f.get(t, 0):6d}")

    print(f"\n{'WHOLE WORKFLOW':20s} {sizey_res.total_wastage_gbh:10.2f} "
          f"{sizey_res.num_failures:6d} {linear_res.total_wastage_gbh:12.2f} "
          f"{linear_res.num_failures:6d}")

    # The point of the paper's Fig. 2: a linear model on BaseRecalibrator
    # either fails (high regime under-predicted) or wastes (low regime
    # over-predicted); Sizey's pool can switch to KNN/RF for it.
    br_sizey = s_w.get("BaseRecalibrator", 0.0) + 0.0
    br_linear = l_w.get("BaseRecalibrator", 0.0)
    if br_linear > 0:
        print(f"\nBaseRecalibrator wastage ratio (linear / Sizey): "
              f"{br_linear / max(br_sizey, 1e-9):.2f}x")


if __name__ == "__main__":
    main()
