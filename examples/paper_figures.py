"""Regenerate every table and figure of the paper in one run.

Uses reduced scales so the whole sweep finishes in a few minutes on a
laptop; pass ``--full`` for full-scale traces (slower, closer shapes).

Run:  python examples/paper_figures.py [--full]
"""

import sys

from repro.experiments import (  # noqa: F401  (imported for discovery)
    fig1_distributions,
    fig2_input_relation,
    fig7_utilization,
    fig8_main_results,
    fig9_training_time,
    fig10_alpha_sweep,
    fig11_model_selection,
    fig12_error_trend,
    table1_workflow_stats,
    table2_per_workflow,
)


def main() -> None:
    full = "--full" in sys.argv
    grid_scale = 1.0 if full else 0.15
    sweep_scale = 1.0 if full else 0.25

    print("=" * 72)
    table1_workflow_stats.run()
    print("=" * 72)
    fig1_distributions.run()
    print("=" * 72)
    fig2_input_relation.run()
    print("=" * 72)
    fig7_utilization.run()
    print("=" * 72)
    grids = fig8_main_results.run(scale=grid_scale)
    print("=" * 72)
    table2_per_workflow.run(grid=grids[1.0])
    print("=" * 72)
    fig9_training_time.run(scale=0.5 if full else 0.15)
    print("=" * 72)
    fig10_alpha_sweep.run(scale=sweep_scale)
    print("=" * 72)
    fig11_model_selection.run(scale=1.0 if full else 0.5)
    print("=" * 72)
    fig12_error_trend.run(scale=1.0 if full else 0.5)


if __name__ == "__main__":
    main()
