"""Replay a WfCommons instance file through the online simulator.

WfCommons (wfcommons.org) is the community-standard format for recorded
workflow executions.  This example:

1. fabricates a WfCommons instance document from a synthetic iwd trace
   (or takes any real instance file via --instance),
2. ingests it with ``WfCommonsSource`` — unit normalization, the
   instance-edge DAG collapse, seeded fallback for missing fields,
3. replays it with Sizey against the developer-preset baseline in both
   kernel modes: the flat event stream and DAG-aware scheduling.

Run:  python examples/wfcommons_replay.py [--scale 0.1] [--instance f.json]
"""

import argparse
import json
import tempfile
from pathlib import Path

from repro import SizeyConfig, SizeyPredictor
from repro.baselines import WorkflowPresets
from repro.sim import OnlineSimulator
from repro.sim.backends import EventDrivenBackend
from repro.workload import WfCommonsSource, trace_to_wfcommons
from repro.workflow.nfcore import build_workflow_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="subsampling fraction for the fabricated instance (default 0.1)",
    )
    parser.add_argument(
        "--instance", default=None,
        help="path to a real WfCommons instance JSON (default: fabricate "
             "one from a synthetic iwd trace)",
    )
    args = parser.parse_args()

    tmp = None
    if args.instance is None:
        trace = build_workflow_trace("iwd", seed=7, scale=args.scale)
        tmp = tempfile.NamedTemporaryFile(
            mode="w", suffix="_wfcommons.json", delete=False
        )
        json.dump(trace_to_wfcommons(trace), tmp)
        tmp.close()
        path = Path(tmp.name)
        print(f"fabricated WfCommons instance from iwd: {path}")
    else:
        path = Path(args.instance)

    source = WfCommonsSource(path, seed=7)
    ingested = source.trace()
    print(
        f"ingested: workflow {ingested.workflow!r}, {len(ingested)} tasks, "
        f"{len(ingested.task_types)} task types, "
        f"{len(ingested.dag.edges)} type-level DAG edges, "
        f"{len(ingested.instance_edges or [])} instance edges\n"
    )

    def replay(predictor, **options):
        sim = OnlineSimulator(
            workload=WfCommonsSource(path, seed=7),
            backend=EventDrivenBackend(seed=7),
            cluster="64g:2,128g:2",
            **options,
        )
        return sim.run(predictor)

    for mode, options in (
        ("flat event stream", {}),
        ("DAG, 2 competing instances",
         {"dag": "trace", "workflow_arrival": "2@poisson:8"}),
    ):
        sizey = replay(SizeyPredictor(SizeyConfig(training_mode="incremental")),
                       **options)
        presets = replay(WorkflowPresets(), **options)
        print(f"--- {mode} ---")
        print(f"{'':24s} {'Sizey':>12s} {'Presets':>12s}")
        print(f"{'memory wastage (GBh)':24s} {sizey.total_wastage_gbh:12.2f} "
              f"{presets.total_wastage_gbh:12.2f}")
        print(f"{'task failures':24s} {sizey.num_failures:12d} "
              f"{presets.num_failures:12d}")
        print(f"{'makespan (h)':24s} {sizey.cluster.makespan_hours:12.3f} "
              f"{presets.cluster.makespan_hours:12.3f}\n")

    if tmp is not None:
        Path(tmp.name).unlink()


if __name__ == "__main__":
    main()
