"""Bench: the heterogeneous cluster-scenario grid end-to-end.

Pins the cost of one full scenario sweep (cluster shapes x placement
policies x arrival models) so regressions in the event engine's
placement or arrival paths show up as wall-clock, and checks the grid's
invariant: a method's wastage ledger is identical across cluster shapes
(placement moves tasks, it never changes what an attempt is charged).
"""

import pytest

from repro.experiments import cluster_scenarios

SCALE = 0.05
SEED = 0


def test_bench_cluster_scenarios_grid(once):
    data = once(
        cluster_scenarios.run,
        seed=SEED,
        scale=SCALE,
        methods=("Witt-Percentile", "Workflow-Presets"),
        verbose=False,
    )
    assert set(data) == {s.name for s in cluster_scenarios.SCENARIOS}
    # For a method that never learns online, wastage depends only on the
    # attempt sequence — which placement and arrivals never change, and
    # the cluster shape only enters through the largest node's clamp.
    # So scenarios sharing a largest-node capacity must charge
    # identical wastage.  (Online learners may legitimately differ —
    # completion order feeds back into their predictions.)
    from repro.cluster.machine import parse_cluster_spec

    by_max_capacity = {}
    for scenario in cluster_scenarios.SCENARIOS:
        max_mb = max(
            cfg.memory_mb for cfg, _ in parse_cluster_spec(scenario.cluster)
        )
        wastage = round(
            float(data[scenario.name]["Workflow-Presets"]["wastage_gbh"]), 9
        )
        by_max_capacity.setdefault(max_mb, set()).add(wastage)
    for max_mb, wastages in by_max_capacity.items():
        assert len(wastages) == 1, f"max capacity {max_mb}"
    # Utilization stays a fraction on every scenario.
    for per_method in data.values():
        for summary in per_method.values():
            assert 0.0 <= summary["mean_utilization"] <= 1.0
