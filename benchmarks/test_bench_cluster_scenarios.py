"""Bench: the heterogeneous cluster-scenario grid end-to-end.

Pins the cost of one full scenario sweep (cluster shapes x placement
policies x arrival models) so regressions in the event engine's
placement or arrival paths show up as wall-clock, and checks the grid's
invariant: a method's wastage ledger is identical across cluster shapes
(placement moves tasks, it never changes what an attempt is charged).
"""

import pytest

from repro.experiments import cluster_scenarios

SCALE = 0.05
SEED = 0


#: The PR 2 scenario set — pinned so this cell stays comparable across
#: snapshots; the node-drain scenario added later gets its own cell.
_LEGACY_SCENARIOS = tuple(
    s for s in cluster_scenarios.SCENARIOS if not s.node_outage
)


def test_bench_cluster_scenarios_grid(once):
    data = once(
        cluster_scenarios.run,
        seed=SEED,
        scale=SCALE,
        methods=("Witt-Percentile", "Workflow-Presets"),
        scenarios=_LEGACY_SCENARIOS,
        verbose=False,
    )
    assert set(data) == {s.name for s in _LEGACY_SCENARIOS}
    # For a method that never learns online, wastage depends only on the
    # attempt sequence — which placement and arrivals never change, and
    # the cluster shape only enters through the largest node's clamp.
    # So scenarios sharing a largest-node capacity must charge
    # identical wastage.  (Online learners may legitimately differ —
    # completion order feeds back into their predictions.)
    from repro.cluster.machine import parse_cluster_spec

    by_max_capacity = {}
    for scenario in _LEGACY_SCENARIOS:
        max_mb = max(
            cfg.memory_mb for cfg, _ in parse_cluster_spec(scenario.cluster)
        )
        wastage = round(
            float(data[scenario.name]["Workflow-Presets"]["wastage_gbh"]), 9
        )
        by_max_capacity.setdefault(max_mb, set()).add(wastage)
    for max_mb, wastages in by_max_capacity.items():
        assert len(wastages) == 1, f"max capacity {max_mb}"
    # Utilization stays a fraction on every scenario.
    for per_method in data.values():
        for summary in per_method.values():
            assert 0.0 <= summary["mean_utilization"] <= 1.0


def test_bench_node_drain_scenario(once):
    """The kernel-level drain scenario: preemption + paused placement."""
    drains = tuple(
        s for s in cluster_scenarios.SCENARIOS if s.node_outage
    )
    assert drains, "the default grid carries a node-drain scenario"
    data = once(
        cluster_scenarios.run,
        seed=SEED,
        scale=SCALE,
        methods=("Workflow-Presets",),
        scenarios=drains,
        verbose=False,
    )
    summary = data[drains[0].name]["Workflow-Presets"]
    # Preemptions charge nothing to the ledger, so the drained grid's
    # wastage matches the same trace's drain-free attempts -- pinned
    # indirectly by the cross-scenario invariant above; here we only
    # require the scenario to execute and stay a fraction-utilized run.
    assert 0.0 <= summary["mean_utilization"] <= 1.0
    assert summary["makespan_hours"] > 0.0
