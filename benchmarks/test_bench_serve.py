"""Bench: sizing-service latency and throughput under loadgen traffic.

The load generator replays a synthetic workload against an in-thread
:class:`~repro.serve.server.SizingServer` with two tenants and the full
predict -> observe feedback loop, so the measured p50/p99 ``/predict``
latencies and the request rate cover the whole serving stack: HTTP
parsing, tenant routing, pool queries under the pool lock, and the
executor hop.  The arrival rate is set far above what the server can
absorb, making the numbers server-bound rather than schedule-bound.
"""

from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServerThread

SEED = 0
N_TASKS = 192


def test_bench_serve_loadgen(once, bench_metric):
    with ServerThread(base_seed=SEED) as srv:
        report = once(
            run_loadgen,
            "synthetic:rnaseq",
            host=srv.host,
            port=srv.port,
            tenants=2,
            rate_rps=2000.0,
            batch=8,
            max_tasks=N_TASKS,
            seed=SEED,
        )
    assert report.n_errors == 0
    assert report.n_tasks == N_TASKS
    bench_metric("predict_p50_ms", report.predict_p50_ms)
    bench_metric("predict_p99_ms", report.predict_p99_ms)
    bench_metric("requests_per_sec", report.requests_per_sec)
