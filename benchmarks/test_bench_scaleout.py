"""Bench: the million-task sharded scale-out flagship.

Runs :data:`repro.experiments.million_task.FLAGSHIP` end-to-end — one
million WfCommons-derived DAG tasks from 100 tenants on a 1000-node
cluster, fanned over 8 shard processes with streaming collectors — and
records the two numbers the scale-out stack exists to bound: wall-clock
seconds and peak resident set size.

This is by far the heaviest cell (~1-2 minutes), so it is deliberately
left *out* of the CI bench-smoke ``-k`` filter; CI instead smokes a
reduced configuration through ``examples/million_task.py`` with a hard
RSS budget.  Run ``pytest benchmarks`` without filters to refresh the
committed snapshot.

Note on the RSS metric: ``ru_maxrss`` is a process-lifetime high
watermark, so within a full bench session this cell's parent-process
number inherits whatever earlier artifact cells peaked at.  The shard
workers are fresh processes, so the child watermark — which dominates
at this scale — is the honest scale-out figure.
"""

from repro.experiments.million_task import FLAGSHIP, collect


def test_bench_scaleout_million_task(once, bench_metric):
    row = once(collect, FLAGSHIP)
    assert row["n_tasks"] >= 1_000_000
    assert row["n_instances"] >= FLAGSHIP.tenants  # every tenant occupied
    bench_metric("wall_clock_seconds", row["wall_clock_seconds"])
    bench_metric("peak_rss_mb", row["peak_rss_mb"])
    bench_metric("tasks_per_second", row["tasks_per_second"])
    bench_metric("n_tasks", row["n_tasks"])
