"""Bench: the DAG-aware workflow-scheduling engine end-to-end.

Pins the cost of the dependency-driven event loop — multi-workflow
injection, ready-set release, per-workflow metric attribution — so
regressions in the scheduling hot path show up as wall-clock, and
checks the engine's core invariants on the result.
"""

import pytest

from repro.experiments import workflow_scheduling
from repro.experiments.factories import make_workflow_presets
from repro.sim import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

SCALE = 0.05
SEED = 0


def test_bench_dag_engine_multi_workflow(once):
    """Raw engine throughput: 6 concurrent workflow instances."""
    trace = build_workflow_trace("iwd", seed=SEED, scale=SCALE)

    def run():
        return OnlineSimulator(
            trace,
            backend="event",
            cluster="64g:2,128g:2",
            placement="best-fit",
            dag="trace",
            workflow_arrival="6@poisson:4",
        ).run(make_workflow_presets())

    res = once(run)
    wm = res.workflows
    assert wm.n_instances == 6
    assert res.num_tasks == 6 * len(trace)
    # Attribution closes: per-workflow wastage sums to the ledger.
    assert sum(w.wastage_gbh for w in wm.instances) == pytest.approx(
        res.total_wastage_gbh
    )
    assert all(w.stretch >= 1.0 - 1e-9 for w in wm.instances)


def test_bench_workflow_scheduling_grid(once):
    """The full sizing-method x cluster x arrival sweep at small scale."""
    data = once(
        workflow_scheduling.run,
        seed=SEED,
        scale=0.02,
        methods=("Witt-Percentile", "Workflow-Presets"),
        verbose=False,
    )
    assert set(data) == {s.name for s in workflow_scheduling.SCENARIOS}
    for per_method in data.values():
        for summary in per_method.values():
            assert summary["mean_workflow_makespan_hours"] > 0
            assert summary["mean_stretch"] >= 1.0 - 1e-9
