"""Bench: replay vs event backend wall-clock, and the batch-predict path.

Pins the cost of the two simulation backends on the same trace and
predictor (the event engine adds heap + placement bookkeeping per
attempt, so it must stay within a small constant factor of replay), and
shows the speedup of the vectorized ``predict_batch`` path over the
equivalent loop of single ``predict`` calls.
"""

import time

import numpy as np
import pytest

from repro.experiments.factories import make_sizey, make_witt_percentile
from repro.sim.runner import run_cell
from repro.workflow.nfcore import build_workflow_trace

SCALE = 0.1
SEED = 0


@pytest.fixture(scope="module")
def trace():
    return build_workflow_trace("rnaseq", seed=SEED, scale=SCALE)


def test_bench_replay_backend(trace, once):
    res = once(run_cell, trace, make_sizey, backend="replay")
    assert res.num_tasks == len(trace)
    assert res.cluster is None


def test_bench_event_backend(trace, once):
    res = once(run_cell, trace, make_sizey, backend="event")
    assert res.num_tasks == len(trace)
    assert res.cluster is not None
    assert res.cluster.makespan_hours > 0.0
    # Concurrency must compress the schedule below the serialized sum of
    # all occupied hours (8 nodes are available).
    assert res.cluster.makespan_hours < res.total_runtime_hours


def test_bench_backend_relative_cost(trace):
    """Event-driven bookkeeping stays within a small factor of replay."""

    def wall(backend):
        t0 = time.perf_counter()
        run_cell(trace, make_witt_percentile, backend=backend)
        return time.perf_counter() - t0

    wall("replay")  # warm-up (imports, caches)
    replay_s = min(wall("replay") for _ in range(3))
    event_s = min(wall("event") for _ in range(3))
    print(f"\nreplay {replay_s * 1e3:.1f} ms, event {event_s * 1e3:.1f} ms "
          f"({event_s / replay_s:.2f}x)")
    # Generous bound: the event engine must not be an order of magnitude
    # slower than replay on the same workload.
    assert event_s < replay_s * 10 + 0.05


def test_bench_predict_batch_speedup(trace, benchmark):
    """The vectorized batch path beats the loop of single predicts."""
    predictor = make_sizey()
    # Train on a full replay so every pool is warm.
    run_cell(trace, lambda: predictor)
    from repro.sim.interface import TaskSubmission

    subs = [
        TaskSubmission.from_instance(inst, i)
        for i, inst in enumerate(trace)
    ]

    def loop():
        return np.array([predictor.predict(s) for s in subs])

    def batched():
        return predictor.predict_batch(subs)

    loop()  # warm-up
    t0 = time.perf_counter()
    expected = loop()
    loop_s = time.perf_counter() - t0

    got = benchmark.pedantic(batched, rounds=1, iterations=1)
    t0 = time.perf_counter()
    batched()
    batch_s = time.perf_counter() - t0

    np.testing.assert_allclose(got, expected, rtol=1e-9)
    print(f"\nloop {loop_s * 1e3:.1f} ms, batch {batch_s * 1e3:.1f} ms "
          f"({loop_s / max(batch_s, 1e-9):.1f}x speedup on "
          f"{len(subs)} submissions)")
    # The batch path must never be slower than the loop by more than
    # measurement noise; in practice it is several times faster.
    assert batch_s < loop_s * 1.5 + 0.02