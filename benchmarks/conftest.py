"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact end-to-end, so a single
round is the meaningful unit of measurement (these are throughput
benchmarks of the full experiment pipeline, not micro-benchmarks).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
