"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact end-to-end, so a single
round is the meaningful unit of measurement (these are throughput
benchmarks of the full experiment pipeline, not micro-benchmarks).

Each session also emits a machine-readable ``BENCH_10.json`` next to the
repo root — wall-clock seconds per benchmark cell keyed by the pytest
node id — so the perf trajectory across PRs can be tracked by diffing
the committed snapshots (see ``docs/BENCH.md`` for the key reference).
Override the output path with the ``REPRO_BENCH_JSON`` environment
variable; set it empty to disable.
"""

import json
import os
import sys
import time
from pathlib import Path

import pytest

from _bench_utils import check_headline_sanity, record_peak_rss

#: PR-numbered snapshot written at session end: {nodeid: seconds}.
_BENCH_FILE = "BENCH_10.json"

_cells: dict[str, float] = {}
#: Extra named measurements (e.g. kernel events/sec), merged alongside
#: the wall-clock cells under a separate "metrics" key.
_metrics: dict[str, float] = {}


@pytest.fixture
def once(benchmark, request):
    """Run the benched callable exactly once and return its result."""

    def _run(fn, *args, **kwargs):
        start = time.perf_counter()
        try:
            return benchmark.pedantic(
                fn, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        finally:
            _cells[request.node.nodeid] = time.perf_counter() - start
            # Memory alongside wall-clock for every cell.  ru_maxrss is
            # the *process-lifetime* high watermark, so within a session
            # the series is non-decreasing — the number pins the cell
            # that first pushed the watermark, later cells inherit it.
            # Skipped under xdist (see record_peak_rss): every worker
            # would re-count the same forked interpreter.
            record_peak_rss(_metrics, request.node.nodeid, request.config)

    return _run


@pytest.fixture
def bench_metric(request):
    """Record a named throughput/ratio metric for the current bench cell.

    Usage: ``bench_metric("events_per_sec", value)`` — lands in the
    snapshot's ``metrics`` section keyed by ``<nodeid>::<name>``.
    """

    def _record(name: str, value: float) -> None:
        _metrics[f"{request.node.nodeid}::{name}"] = float(value)

    return _record


@pytest.fixture
def bench_headline():
    """Record a first-class headline metric under a stable bare key.

    Unlike ``bench_metric``, the key is *not* prefixed with the pytest
    node id — headline numbers (e.g. ``kernel_flat_events_per_sec``)
    keep the same key across refactors that rename or move the bench
    cell, so snapshot diffs track the number, not the test layout.
    """

    def _record(name: str, value: float) -> None:
        _metrics[name] = float(value)

    return _record


def _bench_json_path() -> Path | None:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override is not None:
        return Path(override) if override else None
    return Path(__file__).resolve().parent.parent / _BENCH_FILE


def pytest_sessionfinish(session, exitstatus):
    """Persist per-cell wall-clock when any benchmark actually ran.

    Collection-only runs and failed sessions write nothing.  A green
    partial run (e.g. a ``-k`` smoke subset) *merges* its cells into the
    existing snapshot instead of replacing it, so selecting a subset can
    refresh measurements but never silently drops the other cells from
    the committed perf trajectory.
    """
    if not _cells or exitstatus != 0:
        return
    if hasattr(session.config, "workerinput"):
        # Under pytest-xdist no snapshot is written at all (workers skip
        # here; the controller runs no tests so has no cells).  That is
        # deliberate: parallel workers contend for cores, so their
        # wall-clock numbers would poison the committed perf trajectory.
        # Run ``pytest benchmarks`` without ``-n`` to refresh it.
        return
    path = _bench_json_path()
    if path is None:
        return
    cells: dict[str, float] = {}
    metrics: dict[str, float] = {}
    try:
        previous = json.loads(path.read_text())
        if previous.get("format") == "repro-bench":
            cells.update(previous.get("cells", {}))
            stored = previous.get("metrics", {})
            if isinstance(stored, dict):
                metrics.update(stored)
    except (OSError, ValueError):
        pass  # no snapshot yet, or an unreadable one: start fresh
    cells.update(
        {nodeid: round(secs, 6) for nodeid, secs in _cells.items()}
    )
    metrics.update(
        {key: round(value, 6) for key, value in _metrics.items()}
    )
    payload = {
        "format": "repro-bench",
        "pr": 10,
        "unit": "seconds",
        "cells": dict(sorted(cells.items())),
        "metrics": dict(sorted(metrics.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    _warn_suspect_headlines(payload, path)


def _warn_suspect_headlines(payload, path: Path) -> None:
    """Sanity-check fresh headline metrics against the prior PR snapshot.

    A >10% drop in a bare headline key, or the profiled flat cell
    outrunning the unprofiled one, marks the session as measured in a
    bad environment — the snapshot just written should not be committed
    as the perf trajectory (see docs/BENCH.md "Caveats").  Warnings
    only; the session never fails over this.
    """
    prior_path = path.parent / f"BENCH_{payload['pr'] - 1}.json"
    try:
        prior = json.loads(prior_path.read_text())
    except (OSError, ValueError):
        return
    if prior.get("format") != "repro-bench":
        return
    warnings = check_headline_sanity(
        payload["metrics"], prior.get("metrics", {})
    )
    for line in warnings:
        print(f"\n[bench-sanity] {line}", file=sys.stderr)
