#!/usr/bin/env python
"""Automated interleaved same-host worktree A/B (docs/BENCH.md protocol).

Single-snapshot benchmark numbers confound code changes with host
drift — this repo's bench hosts have swung ±40% on multi-minute
periods.  The protocol that adjudicates a suspect number is an
*interleaved same-machine A/B* of the two commits: check out the prior
commit in a ``git worktree``, alternate best-of-N probes of both trees
on one host, bracket every probe with a pure-Python spin calibration,
and compare *normalized* throughput (events/sec divided by the host's
spin speed at that moment).  PR 8 and PR 9 both needed this done by
hand; this script makes it one command:

.. code-block:: console

   $ git worktree add /tmp/pr9 <prior-commit>
   $ PYTHONPATH=src python benchmarks/ab_compare.py \\
         --tree-a /tmp/pr9 --tree-b . --cells flat,dag,profiled

Each probe is a fresh subprocess running *this* file's ``--probe`` mode
with ``PYTHONPATH`` pointed at the target tree's ``src`` — the probe
code is identical for both trees (it only uses API stable since PR 6),
so the measured difference is the library, not the harness.  Pairs
alternate order (A→B, B→A, …) so slow host windows hit both trees
symmetrically; the summary reports each tree's best raw events/sec and
the median (plus range) of the per-pair normalized ratios.

``--self-check`` runs one tiny probe pair against the current tree on
both sides (expected ratio ≈ 1) — a fast CI smoke that the harness
itself executes end-to-end.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time

__all__ = [
    "CELLS",
    "spin_mops",
    "run_probe",
    "summarize_pairs",
    "format_table",
]

#: Probe cells, mirroring benchmarks/test_bench_kernel.py's headline
#: trio: flat Poisson arrivals, DAG multi-workflow arrivals, and the
#: flat cell with the phase profiler on.
CELLS = ("flat", "dag", "profiled")

_SPIN_N = 2_000_000


def spin_mops(n: int = _SPIN_N) -> float:
    """Millions of pure-Python loop iterations per second, right now.

    The calibration constant behind normalized ratios: a fixed
    interpreter-bound spin whose speed tracks the host's effective
    single-core performance (frequency, steal, cache pressure) at the
    moment of the probe.
    """
    start = time.perf_counter()
    i = 0
    while i < n:
        i += 1
    return n / (time.perf_counter() - start) / 1e6


def run_probe(cell: str, rounds: int, scale: float, seed: int = 0) -> dict:
    """Run one best-of-``rounds`` kernel probe in *this* process.

    Imports the simulator from whatever ``PYTHONPATH`` points at — the
    parent process aims that at the tree under test.  Returns the raw
    measurements; the spin calibration brackets the timed rounds and
    the two samples are averaged.
    """
    from repro.cluster.machine import MachineConfig
    from repro.cluster.manager import ResourceManager
    from repro.sim.backends.event import EventDrivenBackend
    from repro.sim.interface import MemoryPredictor
    from repro.workflow.nfcore import build_workflow_trace

    class _CheapPredictor(MemoryPredictor):
        name = "Cheap"

        def predict(self, task):
            return 64.0 * 1024

        def predict_batch(self, tasks):
            return [64.0 * 1024] * len(tasks)

    if cell == "flat":
        backend = EventDrivenBackend(arrival="poisson:50", seed=seed)
    elif cell == "dag":
        backend = EventDrivenBackend(
            dag="trace", workflow_arrival="4@poisson:2", seed=seed
        )
    elif cell == "profiled":
        backend = EventDrivenBackend(
            arrival="poisson:50", seed=seed, profile=True
        )
    else:
        raise ValueError(f"unknown cell {cell!r}; expected one of {CELLS}")
    trace = build_workflow_trace("rnaseq", seed=seed, scale=scale)
    spin_before = spin_mops()
    best = float("inf")
    result = None
    for _ in range(rounds):
        manager = ResourceManager(
            MachineConfig(name="big", memory_mb=512.0 * 1024), n_nodes=8
        )
        start = time.perf_counter()
        result = backend.run(trace, _CheapPredictor(), manager, 1.0)
        best = min(best, time.perf_counter() - start)
    spin_after = spin_mops()
    n_events = 2 * len(result.ledger.outcomes) + (4 if cell == "dag" else 0)
    spin = (spin_before + spin_after) / 2.0
    return {
        "cell": cell,
        "n_events": n_events,
        "best_seconds": best,
        "events_per_sec": n_events / best,
        "spin_mops": spin,
        "normalized": n_events / best / spin,
    }


def _subprocess_probe(
    tree: str, cell: str, rounds: int, scale: float
) -> dict:
    """Run one probe against ``tree`` in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.abspath(tree), "src")
    proc = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--probe",
            cell,
            "--rounds",
            str(rounds),
            "--scale",
            str(scale),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"probe {cell!r} against {tree!r} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def summarize_pairs(pairs: list) -> dict:
    """Reduce ``[(probe_a, probe_b), ...]`` to the A/B verdict numbers.

    The per-pair *normalized ratio* divides each probe's events/sec by
    its own spin calibration before comparing, cancelling host-speed
    drift between the two probes of a pair; the median over pairs then
    shrugs off the odd pair that straddled a drift edge.
    """
    if not pairs:
        raise ValueError("summarize_pairs needs at least one probe pair")
    ratios = [b["normalized"] / a["normalized"] for a, b in pairs]
    return {
        "best_a": max(a["events_per_sec"] for a, _ in pairs),
        "best_b": max(b["events_per_sec"] for _, b in pairs),
        "ratios": ratios,
        "median_ratio": statistics.median(ratios),
        "min_ratio": min(ratios),
        "max_ratio": max(ratios),
    }


def format_table(results: dict) -> str:
    """Render ``{cell: summary}`` as the BENCH.md-style markdown table."""
    lines = [
        "| cell | A best ev/s | B best ev/s | normalized ratio (B/A) |",
        "| --- | --- | --- | --- |",
    ]
    for cell, s in results.items():
        lines.append(
            f"| {cell} | {s['best_a']:,.0f} | {s['best_b']:,.0f} | "
            f"**{s['median_ratio']:.2f}x** "
            f"({s['min_ratio']:.2f}-{s['max_ratio']:.2f} over "
            f"{len(s['ratios'])} pairs) |"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Interleaved same-host worktree A/B (docs/BENCH.md)"
    )
    parser.add_argument("--tree-a", help="baseline tree (e.g. prior-PR worktree)")
    parser.add_argument("--tree-b", help="candidate tree (default: this repo)")
    parser.add_argument(
        "--cells",
        default="flat,dag,profiled",
        help=f"comma-separated subset of {','.join(CELLS)}",
    )
    parser.add_argument("--pairs", type=int, default=5, help="A/B pairs per cell")
    parser.add_argument("--rounds", type=int, default=5, help="best-of-N per probe")
    parser.add_argument(
        "--scale", type=float, default=0.5, help="workflow trace scale"
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="one tiny same-tree pair per side; expects ratio ~1",
    )
    parser.add_argument("--probe", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.probe:
        # Child mode: measure one probe and emit it as the last stdout
        # line for the parent to parse.
        print(json.dumps(run_probe(args.probe, args.rounds, args.scale)))
        return 0

    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_check:
        tree_a = tree_b = here
        cells = ["flat"]
        # Best-of-3 because the tiny trace runs ~1 ms per round — a
        # single round is at the mercy of one scheduler hiccup.
        pairs, rounds, scale = 1, 3, 0.05
    else:
        if not args.tree_a:
            parser.error("--tree-a is required (or use --self-check)")
        tree_a = args.tree_a
        tree_b = args.tree_b or here
        cells = [c.strip() for c in args.cells.split(",") if c.strip()]
        for c in cells:
            if c not in CELLS:
                parser.error(f"unknown cell {c!r}; expected subset of {CELLS}")
        pairs, rounds, scale = args.pairs, args.rounds, args.scale

    print(f"A = {tree_a}")
    print(f"B = {tree_b}")
    results = {}
    for cell in cells:
        cell_pairs = []
        for k in range(pairs):
            # Alternate order so slow host windows hit both trees
            # symmetrically.
            first_a = k % 2 == 0
            first_tree = tree_a if first_a else tree_b
            second_tree = tree_b if first_a else tree_a
            p1 = _subprocess_probe(first_tree, cell, rounds, scale)
            p2 = _subprocess_probe(second_tree, cell, rounds, scale)
            pa, pb = (p1, p2) if first_a else (p2, p1)
            cell_pairs.append((pa, pb))
            print(
                f"  {cell} pair {k + 1}/{pairs}: "
                f"A {pa['events_per_sec']:,.0f} ev/s "
                f"(spin {pa['spin_mops']:.1f} Mops)  "
                f"B {pb['events_per_sec']:,.0f} ev/s "
                f"(spin {pb['spin_mops']:.1f} Mops)  "
                f"ratio {pb['normalized'] / pa['normalized']:.2f}x"
            )
        results[cell] = summarize_pairs(cell_pairs)
    print()
    print(format_table(results))
    if args.self_check:
        ratio = results["flat"]["median_ratio"]
        if not 0.2 < ratio < 5.0:
            # Same tree on both sides: anything far from 1 means the
            # harness (not the host) is broken.
            print(f"self-check FAILED: same-tree ratio {ratio:.2f}x")
            return 1
        print(f"self-check ok (same-tree ratio {ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
