"""Bench: regenerate Fig. 2 (memory vs input read, linear fits)."""

from repro.experiments import fig2_input_relation


def test_fig2_input_relation(once):
    out = once(fig2_input_relation.run, seed=0, scale=1.0, verbose=True)

    md = out["MarkDuplicates"]
    br = out["BaseRecalibrator"]
    # MarkDuplicates: clear linear correlation (paper: ~18-22 GB band).
    assert md.r2 > 0.95
    assert 15000 < md.intercept_mb < 17000
    # BaseRecalibrator: a single linear model is pathological — roughly
    # half the instances under-predicted ("would lead to half of the task
    # instances failing"), the rest substantially over-allocated.
    assert br.r2 < md.r2
    assert 0.25 < br.under_prediction_rate < 0.75
    assert br.mean_over_allocation_frac > 0.10
