"""Bench: regenerate Fig. 7 (resource-utilisation distributions)."""

import numpy as np

from repro.experiments import fig7_utilization


def test_fig7_utilization(once):
    data = once(fig7_utilization.run, seed=0, scale=1.0, verbose=True)

    med = {
        wf: {res: float(np.median(v)) for res, v in byres.items()}
        for wf, byres in data.items()
    }
    # The documented character of the workflows:
    # methylseq is I/O-intensive (heavy writes) and CPU-intensive.
    assert med["methylseq"]["io_write_mb"] > med["chipseq"]["io_write_mb"]
    assert med["methylseq"]["cpu_percent"] > med["iwd"]["cpu_percent"] * 0.5
    # mag reads a lot.
    assert med["mag"]["io_read_mb"] > med["iwd"]["io_read_mb"]
    # iwd is the lightweight workflow (smallest memory footprint).
    assert med["iwd"]["peak_memory_mb"] == min(
        m["peak_memory_mb"] for m in med.values()
    )
    # Every workflow produced positive utilisation samples everywhere.
    for byres in data.values():
        for v in byres.values():
            assert np.all(v > 0)
