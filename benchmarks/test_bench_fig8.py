"""Bench: regenerate Fig. 8 — the paper's main results.

Panels a/b (total wastage at ttf 1.0 / 0.5), c (failure distributions),
d (aggregated runtimes).  Runs the full (method x workflow) grid on
subsampled traces; the asserted invariants are the paper's robust
qualitative claims, which hold at reduced scale.
"""

import numpy as np
import pytest

from repro.experiments.fig8_main_results import run_main_grid
from repro.experiments.report import render_distribution, render_table
from repro.experiments.factories import METHOD_ORDER

SCALE = 0.12
SEED = 0


@pytest.fixture(scope="module")
def grids():
    return {
        ttf: run_main_grid(ttf, seed=SEED, scale=SCALE) for ttf in (1.0, 0.5)
    }


def test_fig8a_total_wastage_ttf_1(grids, benchmark):
    g = benchmark.pedantic(lambda: grids[1.0], rounds=1, iterations=1)
    rows = [[m, g.totals[m]] for m in METHOD_ORDER]
    print(render_table(["method", "wastage GBh"], rows,
                       title="Fig. 8a — total wastage, ttf=1.0"))
    # Paper shape: presets waste by far the most; Sizey the least among
    # the learning methods, by a wide margin over the presets.
    assert g.totals["Workflow-Presets"] == max(g.totals.values())
    assert g.totals["Sizey"] < g.totals["Workflow-Presets"] / 4
    assert g.totals["Sizey"] <= min(
        v for m, v in g.totals.items() if m != "Sizey"
    ) * 1.15  # lowest or within 15% of the best baseline at small scale


def test_fig8b_total_wastage_ttf_05(grids, benchmark):
    g1, g05 = grids[1.0], benchmark.pedantic(
        lambda: grids[0.5], rounds=1, iterations=1
    )
    rows = [[m, g05.totals[m]] for m in METHOD_ORDER]
    print(render_table(["method", "wastage GBh"], rows,
                       title="Fig. 8b — total wastage, ttf=0.5"))
    # Presets never fail, so their wastage is identical across ttf.
    assert g05.totals["Workflow-Presets"] == pytest.approx(
        g1.totals["Workflow-Presets"]
    )
    # Failure-prone methods benefit from earlier failures.
    for m in ("Sizey", "Witt-Wastage", "Witt-LR"):
        assert g05.totals[m] <= g1.totals[m] * 1.02


def test_fig8c_failure_distributions(grids, benchmark):
    g = benchmark.pedantic(lambda: grids[1.0], rounds=1, iterations=1)
    print("Fig. 8c — failures per task type")
    for m in METHOD_ORDER:
        print(f"  {m:17s} {render_distribution(g.failure_distributions[m])}")
    # Presets are engineered to never fail.
    assert g.failures["Workflow-Presets"] == 0
    # The conservative methods fail less than the aggressive ones.
    assert g.failures["Witt-Percentile"] < g.failures["Witt-Wastage"]
    assert g.failures["Tovar-PPM"] < g.failures["Witt-Wastage"]
    # The aggressive learners do fail (that is their trade-off).
    assert g.failures["Witt-Wastage"] > 0 and g.failures["Sizey"] > 0


def test_fig8d_total_runtimes(grids, benchmark):
    g = benchmark.pedantic(lambda: grids[1.0], rounds=1, iterations=1)
    rows = [[m, g.runtimes[m]] for m in METHOD_ORDER]
    print(render_table(["method", "total runtime h"], rows,
                       title="Fig. 8d — aggregated task runtimes"))
    # No failures -> no retries -> the presets have the lowest runtime.
    assert g.runtimes["Workflow-Presets"] == min(g.runtimes.values())
    # Failure-prone methods pay runtime for retries.
    assert g.runtimes["Witt-Wastage"] > g.runtimes["Workflow-Presets"]
    # Sizey's runtime overhead stays small relative to the presets
    # (paper: second lowest).
    assert g.runtimes["Sizey"] < g.runtimes["Workflow-Presets"] * 1.25
