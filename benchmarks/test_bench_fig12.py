"""Bench: regenerate Fig. 12 (Prokka prediction-error trend)."""

from repro.experiments import fig12_error_trend


def test_fig12_error_trend(once):
    trend = once(
        fig12_error_trend.run,
        task="Prokka",
        workflow="mag",
        seed=0,
        scale=0.5,
        verbose=True,
    )

    assert trend.n > 300  # plenty of Prokka executions even at half scale
    # The paper's claim: the relative prediction error decreases with the
    # number of task executions due to online learning.
    assert trend.second_half_mean < trend.first_half_mean
    assert trend.declining
    # Errors are in a sane band (paper shows ~7-11% for Prokka).
    assert 0.0 < trend.second_half_mean < 50.0
