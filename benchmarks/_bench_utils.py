"""Helpers behind ``benchmarks/conftest.py``, importable by tests.

The conftest hooks themselves only run inside a pytest session, so the
logic that needs regression coverage — xdist detection and the
peak-RSS recording rule — lives here as plain functions.
"""

__all__ = [
    "HEADLINE_DROP_TOLERANCE",
    "check_headline_sanity",
    "is_xdist_worker",
    "record_peak_rss",
]

#: Fractional drop in a headline metric vs the prior snapshot that
#: flags a freshly measured session as suspect.  Deliberately loose —
#: ephemeral per-PR VMs drift, and the check must warn about bad runs
#: without crying wolf on ordinary jitter.
HEADLINE_DROP_TOLERANCE = 0.10


def check_headline_sanity(metrics, previous_metrics, tolerance=HEADLINE_DROP_TOLERANCE):
    """Cross-check fresh headline metrics before they are committed.

    Returns human-readable warning lines (empty list = plausible).  Two
    red flags, both signals that the measurement environment was bad
    (host contention, xdist, frequency drift) rather than that the code
    changed speed:

    - a *bare* headline key (see ``bench_headline``) dropping more than
      ``tolerance`` vs the prior snapshot — throughput numbers are
      best-of-N minima of deterministic workloads, so a large drop in a
      single re-record is noise until proven otherwise by an
      interleaved same-machine A/B of the two commits;
    - the profiler-ON flat cell outrunning the profiler-OFF one — the
      instrumented loop does strictly more work per event, so an
      inversion is physically implausible and taints the whole session.

    Node-scoped ``<nodeid>::<name>`` keys are skipped: they move with
    test-layout refactors and carry no cross-snapshot identity.
    """
    warnings = []
    for key in sorted(previous_metrics):
        if "::" in key:
            continue
        prev = previous_metrics[key]
        cur = metrics.get(key)
        if not isinstance(prev, (int, float)) or prev <= 0:
            continue
        if not isinstance(cur, (int, float)):
            continue
        drop = (prev - cur) / prev
        if drop > tolerance:
            warnings.append(
                f"headline {key} dropped {drop:.0%} vs prior snapshot "
                f"({cur:.0f} vs {prev:.0f}) — suspect run; re-measure on "
                f"an idle machine before committing"
            )
    off = metrics.get("kernel_flat_events_per_sec")
    on = metrics.get("kernel_flat_profiled_events_per_sec")
    if (
        isinstance(off, (int, float))
        and isinstance(on, (int, float))
        and on > off
    ):
        warnings.append(
            f"profiler-ON flat cell ({on:.0f} ev/s) outran the "
            f"profiler-OFF cell ({off:.0f} ev/s) — physically "
            f"implausible; the session hit a noisy window and should "
            f"not be committed"
        )
    return warnings


def is_xdist_worker(config) -> bool:
    """True inside a pytest-xdist worker process.

    xdist sets ``workerinput`` on the worker's config; the controller
    and plain (non-parallel) sessions don't have it.
    """
    return hasattr(config, "workerinput")


def record_peak_rss(metrics, nodeid, config, peak_rss_fn=None) -> bool:
    """Record ``<nodeid>::peak_rss_mb`` into ``metrics`` — unless xdist.

    ``ru_maxrss`` is a process-lifetime high watermark taken over this
    process *and its reaped children*.  Under pytest-xdist every worker
    is a separate child of the controller, so each worker's watermark
    re-counts the forked interpreter plus its own test set — summing or
    even recording them per-cell would attribute the same memory once
    per worker.  Parallel sessions therefore record nothing (their
    wall-clock cells are already discarded at session finish for the
    same reason).  Returns True when the metric was recorded.
    """
    if is_xdist_worker(config):
        return False
    if peak_rss_fn is None:
        from repro.sim.runner import peak_rss_mb as peak_rss_fn
    metrics[f"{nodeid}::peak_rss_mb"] = peak_rss_fn()
    return True
