"""Helpers behind ``benchmarks/conftest.py``, importable by tests.

The conftest hooks themselves only run inside a pytest session, so the
logic that needs regression coverage — xdist detection and the
peak-RSS recording rule — lives here as plain functions.
"""

__all__ = ["is_xdist_worker", "record_peak_rss"]


def is_xdist_worker(config) -> bool:
    """True inside a pytest-xdist worker process.

    xdist sets ``workerinput`` on the worker's config; the controller
    and plain (non-parallel) sessions don't have it.
    """
    return hasattr(config, "workerinput")


def record_peak_rss(metrics, nodeid, config, peak_rss_fn=None) -> bool:
    """Record ``<nodeid>::peak_rss_mb`` into ``metrics`` — unless xdist.

    ``ru_maxrss`` is a process-lifetime high watermark taken over this
    process *and its reaped children*.  Under pytest-xdist every worker
    is a separate child of the controller, so each worker's watermark
    re-counts the forked interpreter plus its own test set — summing or
    even recording them per-cell would attribute the same memory once
    per worker.  Parallel sessions therefore record nothing (their
    wall-clock cells are already discarded at session finish for the
    same reason).  Returns True when the metric was recorded.
    """
    if is_xdist_worker(config):
        return False
    if peak_rss_fn is None:
        from repro.sim.runner import peak_rss_mb as peak_rss_fn
    metrics[f"{nodeid}::peak_rss_mb"] = peak_rss_fn()
    return True
