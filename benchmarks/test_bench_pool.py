"""Micro-bench: ModelPool prediction hot path.

``ModelPool.predict`` / ``predict_batch`` run once per sizing decision —
tens of thousands of calls per grid — so the per-call overhead matters.
The active-slot filter and the accuracy-scores array used to be rebuilt
on every call; they are now cached and refreshed only by ``update()``.
This bench pins the per-call cost of both entry points after a realistic
warm-up so regressions of the hot path are visible in the snapshot.
"""

import numpy as np
import pytest

from repro.core.pool import ModelPool

N_WARMUP = 60
N_CALLS = 500


@pytest.fixture(scope="module")
def warm_pool():
    rng = np.random.default_rng(0)
    pool = ModelPool(training_mode="incremental", random_state=0)
    for i in range(N_WARMUP):
        x = np.array([float(i % 17) + 1.0])
        pool.update(x, 100.0 + 5.0 * float(i % 17) + rng.normal(0, 2.0))
    return pool


def test_bench_pool_predict(warm_pool, once):
    x = np.array([[7.0]])

    def loop():
        for _ in range(N_CALLS):
            warm_pool.predict(x)

    once(loop)
    assert warm_pool.predict(x).estimate > 0


def test_bench_pool_predict_batch(warm_pool, once):
    X = np.linspace(1.0, 17.0, 64).reshape(-1, 1)

    def loop():
        for _ in range(N_CALLS // 10):
            warm_pool.predict_batch(X)

    once(loop)
    assert len(warm_pool.predict_batch(X)) == 64
