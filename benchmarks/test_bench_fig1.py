"""Bench: regenerate Fig. 1 (peak-memory distributions of 4 task types)."""

import numpy as np

from repro.experiments import fig1_distributions


def test_fig1_distributions(once):
    dists = once(fig1_distributions.run, seed=0, scale=1.0, verbose=True)

    assert set(dists) == {"lcextrap", "Preprocessing", "mpileup", "genomecov"}
    # Paper bands: lcextrap ~200 MB-1 GB around a ~550 MB median.
    lc = dists["lcextrap"]
    assert 400 < np.median(lc) < 700
    # mpileup stays below ~400 MB for the bulk of instances.
    assert np.percentile(dists["mpileup"], 75) < 500
    # Preprocessing sits in the 2-4.5 GB band.
    assert 2000 < np.median(dists["Preprocessing"]) < 4500
    # genomecov plateaus in the 4-7 GB band, clearly above the others.
    assert 4000 < np.median(dists["genomecov"]) < 7000
    assert np.median(dists["genomecov"]) > np.median(lc)
