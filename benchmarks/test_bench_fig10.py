"""Bench: regenerate Fig. 10 (wastage vs alpha for two rnaseq tasks)."""

import numpy as np

from repro.experiments import fig10_alpha_sweep

#: Reduced alpha grid for the bench (the regenerator supports the full
#: 13-point paper grid; see examples/paper_figures.py --full).
ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig10_alpha_sweep(once):
    sweeps = once(
        fig10_alpha_sweep.run,
        alphas=ALPHAS,
        seed=0,
        scale=0.4,
        verbose=True,
    )

    assert set(sweeps) == {"FastQC", "MarkDuplicates"}
    for task, series in sweeps.items():
        assert set(series) == set(ALPHAS)
        vals = np.array([series[a] for a in ALPHAS])
        assert np.all(np.isfinite(vals)) and np.all(vals >= 0)
        # Alpha must actually matter: the sweep is not flat.
        assert vals.max() > vals.min()
