"""Bench: regenerate Fig. 9 (full vs incremental training time)."""

from repro.experiments import fig9_training_time


def test_fig9_training_time(once):
    out = once(
        fig9_training_time.run,
        workflows=("rnaseq", "iwd"),
        seed=0,
        scale=0.15,
        verbose=True,
    )

    for wf, r in out.items():
        # Paper: incremental updates cut the median training time by
        # 98.39%; demand at least an order of magnitude here.
        assert r.median_incremental_ms < r.median_full_ms, wf
        assert r.time_reduction > 0.80, (wf, r.time_reduction)
        # Both variants stay in the same wastage ballpark (paper: ~6%
        # premium; allow generous slack at reduced scale).
        assert r.wastage_incremental_gbh < r.wastage_full_gbh * 3.0, wf
