"""Bench: regenerate Table II (per-workflow wastage for all methods)."""

import pytest

from repro.experiments import table2_per_workflow
from repro.experiments.table2_per_workflow import winners

SCALE = 0.12


def test_table2_per_workflow(once):
    table = once(table2_per_workflow.run, seed=0, scale=SCALE, verbose=True)

    assert set(table) == {
        "Sizey",
        "Witt-Wastage",
        "Witt-LR",
        "Tovar-PPM",
        "Witt-Percentile",
        "Workflow-Presets",
    }
    # Sizey beats the presets on every workflow.
    for wf, preset_w in table["Workflow-Presets"].items():
        assert table["Sizey"][wf] < preset_w, wf
    # Paper: Sizey achieves the lowest wastage in most workflows (5/6 at
    # full scale); at reduced scale demand a majority.
    won = winners(table)
    sizey_wins = sum(1 for m in won.values() if m == "Sizey")
    assert sizey_wins >= 3, won
    # The presets never win a workflow.
    assert "Workflow-Presets" not in won.values()
