"""Ingestion throughput: tasks/sec parsed and streamed per workload source.

The workload layer is the mouth of the whole pipeline — every simulated
task flows through a source at least once, and grid campaigns re-read
the same traces for every (workload, method) cell.  This bench measures
each adapter's end-to-end ingestion rate (parse + construct + iterate)
on the same mag-derived task set and records it as a ``tasks_per_sec``
metric in the snapshot, so format-level regressions (schema churn,
validation overhead) are visible across PRs.
"""

import json
import time

import pytest

from repro.workflow.io import save_trace, save_trace_jsonl
from repro.workflow.nfcore import build_workflow_trace
from repro.workload import (
    NfCoreSource,
    TraceFileSource,
    WfCommonsSource,
    trace_to_wfcommons,
)

#: mag at 0.2 is ~1.2k instances over 8 task types — large enough that
#: per-row parse costs dominate fixture overhead.
WORKFLOW = "mag"
SCALE = 0.2
SEED = 0


@pytest.fixture(scope="module")
def base_trace():
    return build_workflow_trace(WORKFLOW, seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def trace_files(base_trace, tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_workload")
    json_path = root / "t.json"
    jsonl_path = root / "t.jsonl"
    wfc_path = root / "t_wfcommons.json"
    save_trace(base_trace, json_path)
    save_trace_jsonl(base_trace, jsonl_path)
    wfc_path.write_text(json.dumps(trace_to_wfcommons(base_trace)))
    return {"json": json_path, "jsonl": jsonl_path, "wfcommons": wfc_path}


def _drain(source_factory, rounds=3):
    """(tasks consumed, seconds) across fresh sources (no cache reuse)."""
    n = 0
    start = time.perf_counter()
    for _ in range(rounds):
        source = source_factory()
        for _task in source.iter_tasks():
            n += 1
    return n, time.perf_counter() - start


def _bench_source(once, bench_metric, source_factory, expected):
    result = once(_drain, source_factory)
    n, elapsed = result
    assert n == expected
    bench_metric("tasks_per_sec", n / elapsed if elapsed > 0 else 0.0)


def test_bench_ingest_synthetic(base_trace, once, bench_metric):
    _bench_source(
        once,
        bench_metric,
        lambda: NfCoreSource(WORKFLOW, seed=SEED, scale=SCALE),
        3 * len(base_trace),
    )


def test_bench_ingest_trace_json(base_trace, trace_files, once, bench_metric):
    _bench_source(
        once,
        bench_metric,
        lambda: TraceFileSource(trace_files["json"]),
        3 * len(base_trace),
    )


def test_bench_ingest_trace_jsonl_stream(
    base_trace, trace_files, once, bench_metric
):
    _bench_source(
        once,
        bench_metric,
        lambda: TraceFileSource(trace_files["jsonl"]),
        3 * len(base_trace),
    )


def test_bench_ingest_wfcommons(base_trace, trace_files, once, bench_metric):
    _bench_source(
        once,
        bench_metric,
        lambda: WfCommonsSource(trace_files["wfcommons"], seed=SEED),
        3 * len(base_trace),
    )
