"""Regression tests for the benchmark harness itself (cheap, no benches).

Pins the xdist rule for ``peak_rss_mb``: ``ru_maxrss`` is a
process-lifetime watermark over the process and its reaped children, so
under pytest-xdist each worker would re-attribute the same forked
interpreter's memory to its own cells — the harness must skip the
metric entirely in workers instead of writing poisoned numbers.
"""

from _bench_utils import (
    check_headline_sanity,
    is_xdist_worker,
    record_peak_rss,
)


class _Config:
    """Stand-in for a pytest config (no workerinput attribute)."""


class _WorkerConfig:
    """Stand-in for an xdist worker's config."""

    workerinput = {"workerid": "gw0"}


def test_is_xdist_worker_detects_workerinput():
    assert not is_xdist_worker(_Config())
    assert is_xdist_worker(_WorkerConfig())


def test_record_peak_rss_skips_xdist_workers():
    metrics: dict[str, float] = {}
    recorded = record_peak_rss(
        metrics, "bench::cell", _WorkerConfig(), peak_rss_fn=lambda: 123.0
    )
    assert recorded is False
    assert metrics == {}


def test_record_peak_rss_records_outside_workers():
    metrics: dict[str, float] = {}
    recorded = record_peak_rss(
        metrics, "bench::cell", _Config(), peak_rss_fn=lambda: 123.0
    )
    assert recorded is True
    assert metrics == {"bench::cell::peak_rss_mb": 123.0}


def test_record_peak_rss_default_probe_is_live():
    # Without an injected probe the real RSS watermark is used — a
    # positive number on every supported platform.
    metrics: dict[str, float] = {}
    assert record_peak_rss(metrics, "n", _Config())
    assert metrics["n::peak_rss_mb"] > 0.0


def test_headline_sanity_flags_large_drop():
    warnings = check_headline_sanity(
        {"kernel_flat_events_per_sec": 46_000.0},
        {"kernel_flat_events_per_sec": 73_000.0},
    )
    assert len(warnings) == 1
    assert "kernel_flat_events_per_sec" in warnings[0]
    assert "37%" in warnings[0]


def test_headline_sanity_accepts_jitter_and_gains():
    # A 5% dip is ordinary jitter; gains are never suspect.
    prior = {
        "kernel_flat_events_per_sec": 73_000.0,
        "kernel_dag_events_per_sec": 74_000.0,
    }
    fresh = {
        "kernel_flat_events_per_sec": 69_500.0,
        "kernel_dag_events_per_sec": 90_000.0,
    }
    assert check_headline_sanity(fresh, prior) == []


def test_headline_sanity_ignores_node_scoped_keys():
    # ``<nodeid>::<name>`` keys move with test refactors — a renamed
    # cell must not read as a vanished-or-regressed metric.
    prior = {"benchmarks/a.py::test_x::events_per_sec": 73_000.0}
    assert check_headline_sanity({}, prior) == []


def test_headline_sanity_ignores_missing_and_new_keys():
    # First snapshot to carry a headline has nothing to compare against.
    assert check_headline_sanity({"new_metric": 1.0}, {}) == []
    assert check_headline_sanity({}, {"gone_metric": 1.0}) == []


def test_headline_sanity_flags_profiled_faster_than_unprofiled():
    # The instrumented loop does strictly more work per event, so the
    # profiler-ON cell outrunning profiler-OFF is a measurement smell,
    # regardless of how both compare to the prior snapshot.
    fresh = {
        "kernel_flat_events_per_sec": 46_000.0,
        "kernel_flat_profiled_events_per_sec": 47_000.0,
    }
    warnings = check_headline_sanity(fresh, {})
    assert len(warnings) == 1
    assert "implausible" in warnings[0]


def test_headline_sanity_accepts_profiler_overhead():
    fresh = {
        "kernel_flat_events_per_sec": 73_000.0,
        "kernel_flat_profiled_events_per_sec": 60_000.0,
    }
    assert check_headline_sanity(fresh, {}) == []
