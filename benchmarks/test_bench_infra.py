"""Regression tests for the benchmark harness itself (cheap, no benches).

Pins the xdist rule for ``peak_rss_mb``: ``ru_maxrss`` is a
process-lifetime watermark over the process and its reaped children, so
under pytest-xdist each worker would re-attribute the same forked
interpreter's memory to its own cells — the harness must skip the
metric entirely in workers instead of writing poisoned numbers.
"""

from _bench_utils import is_xdist_worker, record_peak_rss


class _Config:
    """Stand-in for a pytest config (no workerinput attribute)."""


class _WorkerConfig:
    """Stand-in for an xdist worker's config."""

    workerinput = {"workerid": "gw0"}


def test_is_xdist_worker_detects_workerinput():
    assert not is_xdist_worker(_Config())
    assert is_xdist_worker(_WorkerConfig())


def test_record_peak_rss_skips_xdist_workers():
    metrics: dict[str, float] = {}
    recorded = record_peak_rss(
        metrics, "bench::cell", _WorkerConfig(), peak_rss_fn=lambda: 123.0
    )
    assert recorded is False
    assert metrics == {}


def test_record_peak_rss_records_outside_workers():
    metrics: dict[str, float] = {}
    recorded = record_peak_rss(
        metrics, "bench::cell", _Config(), peak_rss_fn=lambda: 123.0
    )
    assert recorded is True
    assert metrics == {"bench::cell::peak_rss_mb": 123.0}


def test_record_peak_rss_default_probe_is_live():
    # Without an injected probe the real RSS watermark is used — a
    # positive number on every supported platform.
    metrics: dict[str, float] = {}
    assert record_peak_rss(metrics, "n", _Config())
    assert metrics["n::peak_rss_mb"] > 0.0
