"""Bench: regenerate Table I (workflow task-type statistics)."""

import pytest

from repro.experiments import table1_workflow_stats


def test_table1_workflow_stats(once):
    stats = once(table1_workflow_stats.run, seed=0, scale=1.0, verbose=True)

    for wf, (paper_types, paper_avg) in table1_workflow_stats.PAPER_TABLE_I.items():
        got_types, got_avg = stats[wf]
        assert got_types == paper_types, wf
        assert got_avg == pytest.approx(paper_avg, rel=0.02), wf
