"""Bench: ablations of Sizey's design choices (DESIGN.md section 4)."""

import pytest

from repro.experiments import ablations

SCALE = 0.25
SEED = 0


@pytest.fixture(scope="module")
def results():
    return ablations.run(seed=SEED, scale=SCALE, verbose=True)


def test_gating_ablation(results, benchmark):
    r = benchmark.pedantic(lambda: results["gating"], rounds=1, iterations=1)
    # Both strategies must be functional and in the same ballpark; the
    # paper uses interpolation as the default.
    assert set(r) == {"interpolation", "argmax"}
    ratio = r["interpolation"]["wastage_gbh"] / r["argmax"]["wastage_gbh"]
    assert 0.2 < ratio < 5.0


def test_offset_ablation(results, benchmark):
    r = benchmark.pedantic(lambda: results["offset"], rounds=1, iterations=1)
    # No offset at all must fail the most — offsets exist to prevent
    # failures from small underpredictions (§II-E).
    fails = {v: m["failures"] for v, m in r.items()}
    assert fails["none"] == max(fails.values())
    # The dynamic selection is never the worst offset choice on wastage.
    wastage = {v: m["wastage_gbh"] for v, m in r.items() if v != "none"}
    assert wastage["dynamic"] < max(wastage.values()) * 1.001


def test_pool_ablation(results, benchmark):
    r = benchmark.pedantic(lambda: results["pool"], rounds=1, iterations=1)
    # The full pool beats the worst single-model pool clearly — the core
    # claim: no single model class fits all task types.
    singles = {v: m["wastage_gbh"] for v, m in r.items() if v != "full_pool"}
    assert r["full_pool"]["wastage_gbh"] < max(singles.values())
    # And it is competitive with the best single model (within 2x).
    assert r["full_pool"]["wastage_gbh"] < min(singles.values()) * 2.0


def test_granularity_ablation(results, benchmark):
    r = benchmark.pedantic(
        lambda: results["granularity"], rounds=1, iterations=1
    )
    assert set(r) == {"task_machine", "task"}
    for m in r.values():
        assert m["wastage_gbh"] > 0


def test_adaptive_alpha_ablation(results, benchmark):
    r = benchmark.pedantic(
        lambda: results["adaptive_alpha"], rounds=1, iterations=1
    )
    # The future-work extension must not be worse than the worst fixed
    # alpha (it can switch to that alpha's behaviour per task type).
    fixed = {v: m["wastage_gbh"] for v, m in r.items() if v != "adaptive"}
    assert r["adaptive"]["wastage_gbh"] <= max(fixed.values()) * 1.1
