"""Micro-benchmarks of the ML substrate's hot paths.

Sizey's online loop calls ``fit``/``partial_fit``/``predict`` once per
task completion, so per-call latency here bounds the end-to-end
simulation throughput (and is what Fig. 9 aggregates).  Representative
sizes: a few hundred provenance records, one feature.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression, QuantileRegressor
from repro.ml.mlp import MLPRegressor
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.sgd import RecursiveLeastSquares
from repro.ml.tree import DecisionTreeRegressor

N = 400


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(10, 5000, size=(N, 1))
    y = 2.0 * X[:, 0] + 500.0 + rng.normal(0, 50.0, N)
    return X, y


def test_bench_linear_fit(benchmark, data):
    X, y = data
    model = benchmark(lambda: LinearRegression().fit(X, y))
    assert model.coef_[0] == pytest.approx(2.0, rel=0.05)


def test_bench_rls_partial_fit_step(benchmark, data):
    X, y = data
    model = RecursiveLeastSquares().fit(X, y)

    def step():
        model.partial_fit(X[:1], y[:1])
        return model

    benchmark(step)
    assert model.coef_[0] == pytest.approx(2.0, rel=0.05)


def test_bench_knn_predict(benchmark, data):
    X, y = data
    model = KNeighborsRegressor(n_neighbors=5).fit(X, y)
    out = benchmark(lambda: model.predict(X[:1]))
    assert np.isfinite(out).all()


def test_bench_tree_fit(benchmark, data):
    X, y = data
    model = benchmark(lambda: DecisionTreeRegressor(max_depth=8).fit(X, y))
    assert model.n_leaves_ > 1


def test_bench_forest_fit(benchmark, data):
    X, y = data
    model = benchmark(
        lambda: RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
    )
    assert len(model.estimators_) == 20


def test_bench_mlp_partial_fit(benchmark, data):
    X, y = data
    scaled_X = (X - X.mean()) / X.std()
    scaled_y = (y - y.mean()) / y.std()
    model = MLPRegressor(
        hidden_layer_sizes=(16,), partial_fit_steps=20, random_state=0
    )
    model.partial_fit(scaled_X[:64], scaled_y[:64])
    benchmark(lambda: model.partial_fit(scaled_X[:64], scaled_y[:64]))
    assert np.isfinite(model.predict(scaled_X[:4])).all()


def test_bench_quantile_regression_fit(benchmark, data):
    X, y = data
    # The Witt-Wastage hot path: one LP per quantile per refit.
    model = benchmark(lambda: QuantileRegressor(quantile=0.9).fit(X[:256], y[:256]))
    assert model.coef_[0] == pytest.approx(2.0, rel=0.1)
