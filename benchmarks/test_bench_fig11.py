"""Bench: regenerate Fig. 11 (model-class selection shares, Argmax)."""

import pytest

from repro.experiments import fig11_model_selection


def test_fig11_model_selection(once):
    shares = once(
        fig11_model_selection.run, workflow="rnaseq", seed=0, scale=0.5,
        verbose=True,
    )

    # All four classes get selected at least sometimes.
    assert set(shares) == {"linear", "knn", "mlp", "random_forest"}
    assert sum(shares.values()) == pytest.approx(1.0)
    assert all(s > 0.0 for s in shares.values())
    # Paper shape: the non-linear classes together carry a large share of
    # predictions (91.2% in the paper).  Our synthetic tasks are more
    # linear-friendly than the measured traces, so the split shifts
    # toward the linear model (documented in EXPERIMENTS.md); the robust
    # invariant is that the non-linear classes matter substantially.
    nonlinear = shares["mlp"] + shares["knn"] + shares["random_forest"]
    assert nonlinear > 0.4
