"""Bench: raw kernel throughput in events per second.

Unlike the artifact benchmarks, this one isolates the simulation kernel
itself: a cheap non-learning predictor removes model cost, so the
wall-clock is dominated by the event heap, the dispatch/placement pass,
and collector dispatch.  The events/sec figure (2 events per attempt:
arrival-or-release + completion) is the headline number for "runs as
fast as the hardware allows" and lands in the snapshot's ``metrics``
section.  Each cell runs best-of-``ROUNDS``: the minimum wall-clock of
five identical runs drives the metric, which filters scheduler noise
out of the committed perf trajectory.
"""

import os
import time

import pytest

from repro.cluster.machine import MachineConfig
from repro.cluster.manager import ResourceManager
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.workflow.nfcore import build_workflow_trace

SCALE = 0.5
SEED = 0
#: Throughput cells report the best of this many rounds — the minimum
#: is the least-noisy estimator for a deterministic workload (all
#: variance is scheduler/cache interference, always additive).  On a
#: host with an unsteady clock, raise ``REPRO_BENCH_ROUNDS`` so each
#: cell spans enough wall time to catch a fast window; a larger N only
#: tightens the same best-of-N estimate of the noise-free peak.
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "5"))


def _make_manager() -> ResourceManager:
    # Fresh manager per round: ResourceManager is mutated by a run.
    return ResourceManager(
        MachineConfig(name="big", memory_mb=512.0 * 1024), n_nodes=8
    )


def _best_of(once, backend, trace):
    """(first-round result, best elapsed) over ``ROUNDS`` runs.

    Round 0 goes through ``once`` so the cell's wall-clock still lands
    in the snapshot; the extra rounds are timed bare, and the minimum
    drives the events/sec metric.
    """
    best = float("inf")
    result = None
    for i in range(ROUNDS):
        manager = _make_manager()
        start = time.perf_counter()
        if i == 0:
            result = once(backend.run, trace, _CheapPredictor(), manager, 1.0)
        else:
            backend.run(trace, _CheapPredictor(), manager, 1.0)
        best = min(best, time.perf_counter() - start)
    return result, best


class _CheapPredictor(MemoryPredictor):
    """Constant over-allocation: zero model cost, zero failures."""

    name = "Cheap"

    def predict(self, task: TaskSubmission) -> float:
        return 64.0 * 1024

    def predict_batch(self, tasks):
        return [64.0 * 1024] * len(tasks)


@pytest.fixture(scope="module")
def trace():
    return build_workflow_trace("rnaseq", seed=SEED, scale=SCALE)


def test_bench_kernel_throughput_flat(trace, once, bench_metric, bench_headline):
    backend = EventDrivenBackend(arrival="poisson:50", seed=SEED)
    res, best = _best_of(once, backend, trace)
    n_events = 2 * len(res.ledger.outcomes)  # arrival/requeue + completion
    assert res.num_tasks == len(trace)
    eps = n_events / best
    bench_metric("events_per_sec", eps)
    bench_headline("kernel_flat_events_per_sec", eps)


def test_bench_kernel_throughput_dag(trace, once, bench_metric, bench_headline):
    backend = EventDrivenBackend(
        dag="trace", workflow_arrival="4@poisson:2", seed=SEED
    )
    res, best = _best_of(once, backend, trace)
    n_events = 2 * len(res.ledger.outcomes) + 4  # + workflow arrivals
    assert res.num_tasks == 4 * len(trace)
    eps = n_events / best
    bench_metric("events_per_sec", eps)
    bench_headline("kernel_dag_events_per_sec", eps)


def test_bench_kernel_profiler_overhead(trace, once, bench_metric, bench_headline):
    """The profiled loop's throughput, alongside the profiler's own view.

    The headline pair (``kernel_flat_events_per_sec`` vs
    ``kernel_flat_profiled_events_per_sec``) bounds the cost of the
    mirrored instrumented loop; the phase totals must still tile the
    instrumented wall time.
    """
    backend = EventDrivenBackend(
        arrival="poisson:50", seed=SEED, profile=True
    )
    res, best = _best_of(once, backend, trace)
    n_events = 2 * len(res.ledger.outcomes)
    assert res.num_tasks == len(trace)
    profile = res.profile
    assert profile is not None
    assert profile.total_phase_seconds >= 0.95 * profile.wall_seconds
    eps = n_events / best
    bench_metric("events_per_sec", eps)
    bench_headline("kernel_flat_profiled_events_per_sec", eps)
